"""Deterministic reproductions of every error scenario figure.

Each ``fig*`` builder assembles a small network (a transmitter ``tx``,
an affected receiver set ``x*`` and an unaffected set ``y*``), scripts
the exact per-node view disturbances described in the corresponding
figure of the paper, runs the single-frame simulation to completion and
returns a :class:`ScenarioOutcome` with the consistency verdict.

Scenario map (see DESIGN.md experiment index):

========  ==========================================================
fig1a     error in the last EOF bit — the last-bit rule achieves
          consistency in standard CAN
fig1b     error in the last-but-one EOF bit — double reception
fig1c     fig1b plus a transmitter crash — inconsistent omission
fig2x     the fig1 scenarios under MinorCAN (all become consistent)
fig3a     the paper's new scenario: X rejects, the transmitter's view
          of the error flag is masked — IMO with a correct transmitter
fig3b     the same disturbances defeat MinorCAN (the transmitter's
          reactive overload flag fakes a primary error)
fig5      MajorCAN_5 reaching agreement under five errors
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller import CanController, STATE_ERROR_FLAG
from repro.can.controller_config import ControllerConfig
from repro.can.events import EventKind
from repro.can.fields import DATA, EOF, SAMPLING
from repro.can.frame import Frame, data_frame
from repro.core.majorcan import DEFAULT_M, MajorCanController
from repro.core.minorcan import MinorCanController
from repro.errors import ConfigurationError
from repro.faults.injector import CrashFault, ScriptedInjector, Trigger, ViewFault
from repro.simulation.engine import FaultInjector, SimulationEngine
from repro.simulation.trace import Trace

#: Registry of protocol names to controller factories.
PROTOCOLS: Dict[str, Callable[..., CanController]] = {
    "can": CanController,
    "minorcan": MinorCanController,
    "majorcan": MajorCanController,
}


def make_controller(
    protocol: str,
    name: str,
    m: int = DEFAULT_M,
    config: Optional[ControllerConfig] = None,
) -> CanController:
    """Instantiate a controller of the named protocol variant."""
    key = protocol.lower()
    if key not in PROTOCOLS:
        raise ConfigurationError(
            "unknown protocol %r (choose from %s)" % (protocol, sorted(PROTOCOLS))
        )
    if key == "majorcan":
        return MajorCanController(name, m=m, config=config)
    return PROTOCOLS[key](name, config=config)


@dataclass
class ScenarioOutcome:
    """Result of one deterministic scenario run."""

    name: str
    protocol: str
    deliveries: Dict[str, int]
    crashed: List[str]
    attempts: int
    errors_injected: int
    trace: Trace
    engine: SimulationEngine = field(repr=False, default=None)
    #: The frame the scenario transmitted (the trace store serializes
    #: it into recording manifests so the scenario can be rebuilt).
    frame: Optional[Frame] = None

    @property
    def live_nodes(self) -> List[str]:
        """Nodes that did not crash during the scenario."""
        return [name for name in self.deliveries if name not in self.crashed]

    @property
    def consistent(self) -> bool:
        """All live nodes delivered the message the same number of times."""
        counts = {self.deliveries[name] for name in self.live_nodes}
        return len(counts) <= 1

    @property
    def inconsistent_omission(self) -> bool:
        """Some live node delivered the message while another never did."""
        counts = [self.deliveries[name] for name in self.live_nodes]
        return any(count == 0 for count in counts) and any(
            count > 0 for count in counts
        )

    @property
    def double_reception(self) -> bool:
        """Some node delivered the same message more than once."""
        return any(count > 1 for count in self.deliveries.values())

    @property
    def all_delivered_once(self) -> bool:
        """Every live node delivered the message exactly once."""
        return all(self.deliveries[name] == 1 for name in self.live_nodes)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "CONSISTENT" if self.consistent else "INCONSISTENT"
        tags = []
        if self.inconsistent_omission:
            tags.append("IMO")
        if self.double_reception:
            tags.append("double-reception")
        return "%s/%s: %s %s deliveries=%s attempts=%d" % (
            self.name,
            self.protocol,
            verdict,
            ",".join(tags) or "-",
            self.deliveries,
            self.attempts,
        )


def run_single_frame_scenario(
    name: str,
    nodes: Sequence[CanController],
    injector: "FaultInjector",
    frame: Optional[Frame] = None,
    max_bits: int = 20000,
    record_bits: bool = True,
) -> ScenarioOutcome:
    """Drive one frame through ``nodes`` under ``injector`` and summarise.

    The first node is the transmitter.  The delivery count per node is
    the number of times the frame's wire identity was delivered.
    """
    transmitter = nodes[0]
    if frame is None:
        frame = data_frame(0x123, b"\x55", message_id="m")
    transmitter.submit(frame)
    engine = SimulationEngine(nodes, injector=injector, record_bits=record_bits)
    engine.run_until_idle(max_bits)
    trace = engine.collect_events()
    key = (frame.can_id.value, frame.can_id.extended, frame.remote, frame.dlc, frame.data)
    deliveries = {
        node.name: sum(1 for d in node.deliveries if d.wire_key() == key)
        for node in nodes
    }
    attempts = max(
        (event.data.get("attempt", 0) for event in trace.events
         if event.kind == EventKind.TX_START),
        default=0,
    )
    injected = getattr(injector, "total_fired", None)
    if injected is None:
        injected = getattr(injector, "injected", 0)
    return ScenarioOutcome(
        name=name,
        protocol=type(transmitter).protocol_name,
        deliveries=deliveries,
        crashed=[node.name for node in nodes if node.crashed],
        attempts=attempts,
        errors_injected=injected,
        trace=trace,
        engine=engine,
        frame=frame,
    )


def _network(
    protocol: str,
    m: int,
    x_count: int = 1,
    y_count: int = 1,
) -> Tuple[CanController, List[CanController], List[CanController]]:
    transmitter = make_controller(protocol, "tx", m=m)
    x_set = [
        make_controller(protocol, "x%d" % i if x_count > 1 else "x", m=m)
        for i in range(1, x_count + 1)
    ]
    y_set = [
        make_controller(protocol, "y%d" % i if y_count > 1 else "y", m=m)
        for i in range(1, y_count + 1)
    ]
    return transmitter, x_set, y_set


# ---------------------------------------------------------------------------
# Figure 1 (and, with protocol="minorcan", Figure 2)
# ---------------------------------------------------------------------------


def fig1a(protocol: str = "can", m: int = DEFAULT_M, x_count: int = 1, y_count: int = 1) -> ScenarioOutcome:
    """Fig. 1a: the X set sees a dominant level in the last EOF bit.

    In standard CAN the last-bit rule makes X accept the frame and send
    an overload flag; everyone delivers exactly once.
    """
    transmitter, x_set, y_set = _network(protocol, m, x_count, y_count)
    eof_last = transmitter.config.eof_length - 1
    faults = [
        ViewFault(node.name, Trigger(field=EOF, index=eof_last), force=DOMINANT)
        for node in x_set
    ]
    return run_single_frame_scenario(
        "fig1a", [transmitter] + x_set + y_set, ScriptedInjector(view_faults=faults)
    )


def fig1b(protocol: str = "can", m: int = DEFAULT_M, x_count: int = 1, y_count: int = 1) -> ScenarioOutcome:
    """Fig. 1b: the X set sees a dominant level in the last-but-one EOF bit.

    X rejects and flags; the transmitter retransmits; the Y set is
    obliged to accept by the last-bit rule and receives the frame twice
    (double reception) in standard CAN.
    """
    transmitter, x_set, y_set = _network(protocol, m, x_count, y_count)
    eof_last = transmitter.config.eof_length - 1
    faults = [
        ViewFault(node.name, Trigger(field=EOF, index=eof_last - 1), force=DOMINANT)
        for node in x_set
    ]
    return run_single_frame_scenario(
        "fig1b", [transmitter] + x_set + y_set, ScriptedInjector(view_faults=faults)
    )


def fig1c(protocol: str = "can", m: int = DEFAULT_M, x_count: int = 1, y_count: int = 1) -> ScenarioOutcome:
    """Fig. 1c: as Fig. 1b, but the transmitter crashes before it can
    retransmit — the inconsistent message omission of Rufino et al."""
    transmitter, x_set, y_set = _network(protocol, m, x_count, y_count)
    eof_last = transmitter.config.eof_length - 1
    faults = [
        ViewFault(node.name, Trigger(field=EOF, index=eof_last - 1), force=DOMINANT)
        for node in x_set
    ]
    crash = CrashFault("tx", Trigger(state=STATE_ERROR_FLAG))
    return run_single_frame_scenario(
        "fig1c",
        [transmitter] + x_set + y_set,
        ScriptedInjector(view_faults=faults, crash_faults=[crash]),
    )


# ---------------------------------------------------------------------------
# Figure 3: the paper's new scenarios
# ---------------------------------------------------------------------------


def fig3(protocol: str = "can", m: int = DEFAULT_M, x_count: int = 1, y_count: int = 1) -> ScenarioOutcome:
    """Fig. 3a/3b: the new inconsistency scenario.

    The X set sees a dominant level in the last-but-one EOF bit and
    rejects; an additional single-bit disturbance masks the first bit
    of X's error flag from the transmitter, which therefore considers
    the frame correctly transmitted.  The Y set accepts via the
    last-bit rule (standard CAN) or via a faked primary-error
    indication (MinorCAN).  Result: an inconsistent message omission
    with a *correct* transmitter.
    """
    transmitter, x_set, y_set = _network(protocol, m, x_count, y_count)
    eof_last = transmitter.config.eof_length - 1
    faults = [
        ViewFault(node.name, Trigger(field=EOF, index=eof_last - 1), force=DOMINANT)
        for node in x_set
    ]
    faults.append(
        ViewFault("tx", Trigger(field=EOF, index=eof_last), force=RECESSIVE)
    )
    name = "fig3b" if protocol.lower() == "minorcan" else "fig3a"
    return run_single_frame_scenario(
        name, [transmitter] + x_set + y_set, ScriptedInjector(view_faults=faults)
    )


def fig3a(m: int = DEFAULT_M, x_count: int = 1, y_count: int = 1) -> ScenarioOutcome:
    """Fig. 3a: the new scenario under standard CAN."""
    return fig3("can", m=m, x_count=x_count, y_count=y_count)


def fig3b(m: int = DEFAULT_M, x_count: int = 1, y_count: int = 1) -> ScenarioOutcome:
    """Fig. 3b: the new scenario under MinorCAN."""
    return fig3("minorcan", m=m, x_count=x_count, y_count=y_count)


# ---------------------------------------------------------------------------
# Figure 5: MajorCAN_m agreement under m errors
# ---------------------------------------------------------------------------


def fig5(m: int = DEFAULT_M, protocol: str = "majorcan") -> ScenarioOutcome:
    """Fig. 5: MajorCAN_5 consistency in front of five errors.

    * the X set detects a dominant bit in the 3rd EOF bit (1 error);
    * the Y set detects X's error flag in the 4th bit (no extra error);
    * two disturbances mask the flag from the transmitter until the
      6th bit — the second sub-field — so it accepts and answers with
      an extended error flag (2 errors);
    * two further disturbances corrupt samples of the Y set inside the
      sampling window; the majority vote still accepts (2 errors).
    """
    transmitter, x_set, y_set = _network(protocol, m, 1, 1)
    window_start = m + 7
    faults = [
        ViewFault("x", Trigger(field=EOF, index=2), force=DOMINANT),
        ViewFault("tx", Trigger(field=EOF, index=3), force=RECESSIVE),
        ViewFault("tx", Trigger(field=EOF, index=4), force=RECESSIVE),
        ViewFault("y", Trigger(field=SAMPLING, index=window_start), force=RECESSIVE),
        ViewFault("y", Trigger(field=SAMPLING, index=window_start + 1), force=RECESSIVE),
    ]
    return run_single_frame_scenario(
        "fig5", [transmitter] + x_set + y_set, ScriptedInjector(view_faults=faults)
    )


# ---------------------------------------------------------------------------
# Figure 4: per-bit behaviour probe of a MajorCAN node
# ---------------------------------------------------------------------------


@dataclass
class BehaviourRow:
    """One row of the Fig. 4 behaviour table."""

    case: str
    flag: str
    sampling: bool
    verdict: str

    def render(self) -> str:
        sampling = "sampling is performed" if self.sampling else "no sampling"
        return "%-14s %-20s %-22s frame is %s" % (
            self.case,
            self.flag,
            sampling,
            self.verdict,
        )


def fig4_behaviour(m: int = DEFAULT_M) -> List[BehaviourRow]:
    """Regenerate the Fig. 4 table: the behaviour of a MajorCAN_m node
    for a CRC error and for an error in each of the 2m EOF bits."""
    rows: List[BehaviourRow] = [_fig4_case_crc(m)]
    for eof_index in range(2 * m):
        rows.append(_fig4_case_eof(m, eof_index))
    return rows


def _fig4_probe(m: int, faults: List[ViewFault], case: str) -> BehaviourRow:
    transmitter, x_set, y_set = _network("majorcan", m, 1, 1)
    outcome = run_single_frame_scenario(
        case, [transmitter] + x_set + y_set, ScriptedInjector(view_faults=faults)
    )
    probe = outcome.engine.node("x")
    extended = any(
        event.kind == EventKind.EXTENDED_FLAG_START for event in probe.events
    )
    verdicts = [
        event for event in probe.events if event.kind == EventKind.SAMPLING_VERDICT
    ]
    # The verdict on the *first* frame instance: an extended flag means
    # unconditional acceptance; a sampling node follows its majority
    # vote; otherwise (the CRC-error class) the frame is rejected.
    if extended:
        accepted = True
    elif verdicts:
        accepted = bool(verdicts[0].data.get("accept"))
    else:
        accepted = False
    return BehaviourRow(
        case=case,
        flag="extended error flag" if extended else "6-bit error flag",
        sampling=bool(verdicts),
        verdict="accepted" if accepted else "rejected",
    )


def _fig4_case_crc(m: int) -> BehaviourRow:
    # Corrupt one DATA bit of x's view: with the alternating 0x55
    # payload no stuff bits are involved, so the error is a pure CRC
    # mismatch at x, whose error flag starts at the first EOF bit.
    faults = [ViewFault("x", Trigger(field=DATA, index=3))]
    return _fig4_probe(m, faults, "CRC error")


def _fig4_case_eof(m: int, eof_index: int) -> BehaviourRow:
    faults = [ViewFault("x", Trigger(field=EOF, index=eof_index), force=DOMINANT)]
    return _fig4_probe(m, faults, "Error in EOF bit %d" % (eof_index + 1))


#: Name -> builder registry used by the CLI and the benchmarks.
SCENARIOS: Dict[str, Callable[..., ScenarioOutcome]] = {
    "fig1a": fig1a,
    "fig1b": fig1b,
    "fig1c": fig1c,
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig5": fig5,
}
