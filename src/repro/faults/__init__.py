"""Fault injection: deterministic scenario scripts and random models."""

from repro.faults.bit_errors import (
    BurstViewErrorInjector,
    ErrorBudgetInjector,
    RandomViewErrorInjector,
)
from repro.faults.campaigns import (
    CampaignOutcome,
    CampaignSpec,
    compare_protocols,
    run_campaign,
)
from repro.faults.crash import (
    PAPER_DELTA_T_HOURS,
    PAPER_LAMBDA_PER_HOUR,
    crash_at_time,
    crash_on_error_flag,
    crash_probability,
)
from repro.faults.injector import (
    CompositeInjector,
    CrashFault,
    DriveFault,
    ScriptedInjector,
    Trigger,
    ViewFault,
)
from repro.faults.models import (
    REFERENCE_INCIDENT_RATE,
    TABLE1_BER_VALUES,
    ber_star,
    p_eff,
)
from repro.faults.scenarios import (
    PROTOCOLS,
    SCENARIOS,
    BehaviourRow,
    ScenarioOutcome,
    fig1a,
    fig1b,
    fig1c,
    fig3,
    fig3a,
    fig3b,
    fig4_behaviour,
    fig5,
    make_controller,
    run_single_frame_scenario,
)

__all__ = [
    "BehaviourRow",
    "BurstViewErrorInjector",
    "CampaignOutcome",
    "CampaignSpec",
    "CompositeInjector",
    "CrashFault",
    "DriveFault",
    "ErrorBudgetInjector",
    "PAPER_DELTA_T_HOURS",
    "PAPER_LAMBDA_PER_HOUR",
    "PROTOCOLS",
    "RandomViewErrorInjector",
    "REFERENCE_INCIDENT_RATE",
    "SCENARIOS",
    "ScenarioOutcome",
    "ScriptedInjector",
    "TABLE1_BER_VALUES",
    "Trigger",
    "ViewFault",
    "ber_star",
    "crash_at_time",
    "crash_on_error_flag",
    "compare_protocols",
    "crash_probability",
    "fig1a",
    "fig1b",
    "fig1c",
    "fig3",
    "fig3a",
    "fig3b",
    "fig4_behaviour",
    "fig5",
    "make_controller",
    "p_eff",
    "run_campaign",
    "run_single_frame_scenario",
]
