"""Parallel batch execution of independent simulation trials.

Every statistical workload of the reproduction — Monte-Carlo
validation, bounded exhaustive verification, fault campaigns and the
ablation sweeps — reduces to many *independent* single-frame
simulations.  This package fans chunks of such trials out over a
``multiprocessing`` worker pool:

* :mod:`repro.parallel.seeds` — deterministic seed splitting via
  ``numpy.random.SeedSequence.spawn``, so parallel and serial runs of
  the same seed produce bit-identical aggregate results;
* :mod:`repro.parallel.tasks` — picklable task specs (one chunk of
  trials each) with a pure ``run()`` returning a picklable partial
  result;
* :mod:`repro.parallel.pool` — the worker pool itself, with a
  zero-dependency serial fallback and a ``jobs=1`` path that executes
  tasks inline.

The determinism contract: callers chunk their work identically
regardless of ``jobs`` and merge partial results in chunk order, so
``jobs`` only decides *where* a chunk runs, never *what* it computes.
"""

from repro.parallel.pool import (
    effective_jobs,
    imap_tasks,
    run_tasks,
    set_worker_context,
    worker_context,
)
from repro.parallel.seeds import adaptive_chunk, rng_from, spawn_seeds

__all__ = [
    "adaptive_chunk",
    "effective_jobs",
    "imap_tasks",
    "run_tasks",
    "rng_from",
    "set_worker_context",
    "spawn_seeds",
    "worker_context",
]
