"""Picklable task specs for the worker pool.

Each task describes one *chunk* of independent trials — everything a
worker needs (protocol, m, node set, fault universe, child seed) as
plain picklable data — and implements ``run()`` returning an equally
picklable partial result.  The parent merges partial results in chunk
order, which together with :mod:`repro.parallel.seeds` makes the
aggregate independent of the worker count.

The heavy domain modules are imported lazily inside ``run()`` so this
module stays import-light in the parent and avoids import cycles with
the analysis layer (which imports the task classes to build chunks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.parallel.seeds import ChildSeed, rng_from

#: A fault site as used by the verification universe.
Site = Tuple[str, str, int]


def execute(task):
    """Run one task (the pool's map function — must be module level)."""
    return task.run()


# ---------------------------------------------------------------------------
# Monte-Carlo chunks
# ---------------------------------------------------------------------------


@dataclass
class ChunkCounts:
    """Additive partial classification counts of one Monte-Carlo chunk."""

    trials: int = 0
    imo: int = 0
    double_reception: int = 0
    inconsistent: int = 0
    no_fault_trials: int = 0
    flips_total: int = 0
    #: Batch-backend provenance counters (empty on the engine backend).
    backend_stats: dict = field(default_factory=dict)

    def absorb_outcome(self, outcome) -> None:
        """Fold one :class:`ScenarioOutcome` classification in."""
        if outcome.inconsistent_omission:
            self.imo += 1
        if outcome.double_reception:
            self.double_reception += 1
        if not outcome.consistent:
            self.inconsistent += 1


@dataclass(frozen=True)
class MonteCarloTailChunk:
    """A chunk of tail-window Monte-Carlo trials (experiment E-MC)."""

    protocol: str
    m: int
    node_names: Tuple[str, ...]
    sites: Tuple[Tuple[str, int], ...]  # (node name, EOF index)
    ber_star: float
    trials: int
    seed: ChildSeed
    backend: str = "engine"

    def run(self) -> ChunkCounts:
        from repro.can.fields import EOF

        rng = rng_from(self.seed)
        counts = ChunkCounts(trials=self.trials)
        # Draw the whole chunk as one (trials, sites) matrix.  The
        # generator fills row-major from the same PCG64 stream as the
        # per-trial ``rng.random(len(sites))`` calls it replaces, so
        # the drawn placements — and therefore the aggregate counts —
        # are bit-identical to the scalar draw order for the same
        # SeedSequence child, for both backends and any chunking.
        mask = rng.random((self.trials, len(self.sites))) < self.ber_star
        counts.flips_total = int(mask.sum())
        counts.no_fault_trials = self.trials - int(mask.any(axis=1).sum())
        # ``nonzero`` walks the mask in row-major order too, so the
        # fault-bearing trials regroup in draw order at O(flips) cost.
        groups: List[List[Tuple[str, str, int]]] = []
        last_trial = -1
        for trial, site in zip(*(axis.tolist() for axis in mask.nonzero())):
            if trial != last_trial:
                groups.append([])
                last_trial = trial
            name, index = self.sites[site]
            groups[-1].append((name, EOF, index))
        trial_combos = [tuple(group) for group in groups]
        if not trial_combos:
            return counts
        if self.backend == "batch":
            from repro.analysis.batchreplay import BatchReplayEvaluator

            evaluator = BatchReplayEvaluator(
                self.protocol, self.m, self.node_names
            )
            for outcome in evaluator.evaluate(trial_combos):
                counts.absorb_outcome(outcome)
            counts.backend_stats = dict(evaluator.stats)
            return counts
        from repro.can.frame import data_frame
        from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
        from repro.faults.scenarios import make_controller, run_single_frame_scenario

        for combo in trial_combos:
            faults = [
                ViewFault(name, Trigger(field=field_name, index=index), force=None)
                for name, field_name, index in combo
            ]
            nodes = [
                make_controller(self.protocol, name, m=self.m)
                for name in self.node_names
            ]
            outcome = run_single_frame_scenario(
                "mc",
                nodes,
                ScriptedInjector(view_faults=faults),
                frame=data_frame(0x123, b"\x55", message_id="m"),
                record_bits=False,
            )
            counts.absorb_outcome(outcome)
        return counts


@dataclass(frozen=True)
class MonteCarloFullChunk:
    """A chunk of whole-frame random-view-error Monte-Carlo trials."""

    protocol: str
    m: int
    node_names: Tuple[str, ...]
    ber_star: float
    trials: int
    payload: bytes
    max_bits: int
    seed: ChildSeed

    def run(self) -> ChunkCounts:
        from repro.can.frame import data_frame
        from repro.faults.bit_errors import RandomViewErrorInjector
        from repro.faults.scenarios import make_controller, run_single_frame_scenario

        rng = rng_from(self.seed)
        counts = ChunkCounts(trials=self.trials)
        for _ in range(self.trials):
            nodes = [
                make_controller(self.protocol, name, m=self.m)
                for name in self.node_names
            ]
            injector = RandomViewErrorInjector(self.ber_star, seed=rng)
            outcome = run_single_frame_scenario(
                "mc-full",
                nodes,
                injector,  # type: ignore[arg-type]
                frame=data_frame(0x123, self.payload, message_id="m"),
                record_bits=False,
                max_bits=self.max_bits,
            )
            counts.flips_total += injector.injected
            counts.absorb_outcome(outcome)
        return counts


# ---------------------------------------------------------------------------
# Bounded exhaustive verification chunks
# ---------------------------------------------------------------------------


@dataclass
class VerificationChunkResult:
    """Partial result of one chunk of flip placements."""

    runs: int = 0
    #: (sites, sorted deliveries, attempts, kind) per broken placement.
    hits: List[Tuple[Tuple[Site, ...], Tuple[Tuple[str, int], ...], int, str]] = field(
        default_factory=list
    )
    #: Batch-backend provenance counters (empty on the engine backend).
    stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class VerificationChunk:
    """A chunk of exhaustive ≤ max_flips placements (experiment E-VER)."""

    protocol: str
    m: int
    node_names: Tuple[str, ...]
    combos: Tuple[Tuple[Site, ...], ...]
    payload: bytes
    backend: str = "engine"

    def run(self) -> VerificationChunkResult:
        result = VerificationChunkResult()
        if self.backend == "batch":
            from repro.analysis.batchreplay import BatchReplayEvaluator

            evaluator = BatchReplayEvaluator(
                self.protocol, self.m, self.node_names, payload=self.payload
            )
            outcomes = evaluator.evaluate(self.combos)
            result.runs = len(self.combos)
            result.hits = [
                hit
                for combo, outcome in zip(self.combos, outcomes)
                for hit in (evaluator.counterexample(combo, outcome),)
                if hit is not None
            ]
            result.stats = dict(evaluator.stats)
            return result
        from repro.analysis.verification import classify_placement

        for combo in self.combos:
            result.runs += 1
            hit = classify_placement(
                self.protocol, self.m, self.node_names, combo, self.payload
            )
            if hit is not None:
                result.hits.append(hit)
        return result


# ---------------------------------------------------------------------------
# Fault-campaign chunks
# ---------------------------------------------------------------------------

#: (round index, attacked, category in {"imo", "double", "consistent"},
#: errors injected) — one entry per campaign round.
RoundResult = Tuple[int, bool, str, int]


@dataclass
class CampaignChunkResult:
    """Partial result of one chunk of campaign rounds."""

    rounds: List[RoundResult] = field(default_factory=list)
    #: Batch-backend provenance counters (empty on the engine backend).
    stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CampaignRoundsChunk:
    """A chunk of independent campaign rounds, one child seed each."""

    protocol: str
    m: int
    n_nodes: int
    attack_probability: float
    noise_ber_star: float
    background_frames: int
    rounds: Tuple[Tuple[int, ChildSeed], ...]
    backend: str = "engine"

    def run(self) -> CampaignChunkResult:
        from repro.faults.campaigns import classify_counts, run_round

        node_names = ["critical"] + ["bg%d" % i for i in range(1, self.n_nodes)]
        # The attack schedule is drawn up front, in the exact per-round
        # order of the engine path, so both backends consume the same
        # generator stream and see the same attacked/victim plan.
        draws = []
        for round_index, child in self.rounds:
            rng = rng_from(child)
            attacked = bool(rng.random() < self.attack_probability)
            victim = node_names[1 + int(rng.integers(0, self.n_nodes - 1))]
            draws.append((round_index, attacked, victim, rng))
        if self.backend == "batch":
            # Without view noise a round is a pure function of the
            # attack draw: the critical frame has the lowest identifier
            # so background traffic never reorders it, and the Fig. 3a
            # forces coincide with view *flips* (the victim's flag or
            # extended flag makes the transmitter's masked EOF bit
            # dominant on the bus).  Each scripted fault fires exactly
            # once, so the injected count is 2 per attacked round.
            # With view noise the round is *still* that pure function
            # whenever its noise mask never fires — and the mask is a
            # known-length prefix of the child stream (one uniform per
            # node per bus bit of the noise-free reference round), so a
            # vectorised scan classifies each round up front and only
            # the rounds whose mask fires rerun on the engine, from the
            # rewound generator (bit-identical to the engine path).
            from repro.analysis.batchreplay import BatchReplayEvaluator
            from repro.can.fields import EOF
            from repro.can.frame import data_frame

            evaluator = BatchReplayEvaluator(
                self.protocol,
                self.m,
                node_names,
                frame=data_frame(0x010, b"\xc0\x01", message_id="critical"),
            )
            eof_last = evaluator.shape.eof_length - 1
            combos = []
            combo_positions = []
            engine_rows = {}
            for position, (round_index, attacked, victim, rng) in enumerate(draws):
                flip = None
                if self.noise_ber_star > 0.0:
                    from repro.analysis.noisebatch import (
                        first_flip,
                        generator_state,
                        restore_state,
                    )
                    from repro.faults.campaigns import round_reference_bits

                    state = generator_state(rng)
                    bits = round_reference_bits(
                        self.protocol,
                        self.m,
                        node_names,
                        self.background_frames,
                        attacked,
                        victim,
                    )
                    flip = first_flip(
                        rng, bits * self.n_nodes, self.noise_ber_star
                    )
                if flip is None:
                    combos.append(
                        (
                            (victim, EOF, eof_last - 1),
                            ("critical", EOF, eof_last),
                        )
                        if attacked
                        else ()
                    )
                    combo_positions.append(position)
                    continue
                restore_state(rng, state)
                counts, injected = run_round(
                    protocol=self.protocol,
                    m=self.m,
                    node_names=node_names,
                    background_frames=self.background_frames,
                    noise_ber_star=self.noise_ber_star,
                    attacked=attacked,
                    victim=victim,
                    rng=rng,
                )
                engine_rows[position] = (
                    round_index,
                    attacked,
                    classify_counts(counts),
                    injected,
                )
            rows = dict(engine_rows)
            for position, outcome in zip(
                combo_positions, evaluator.evaluate(combos)
            ):
                round_index, attacked, _, _ = draws[position]
                rows[position] = (
                    round_index,
                    attacked,
                    classify_counts(outcome.deliveries),
                    2 if attacked else 0,
                )
            result = CampaignChunkResult(stats=dict(evaluator.stats))
            if engine_rows:
                result.stats["engine"] = (
                    result.stats.get("engine", 0) + len(engine_rows)
                )
            result.rounds = [rows[position] for position in range(len(draws))]
            return result
        result = CampaignChunkResult()
        for round_index, attacked, victim, rng in draws:
            counts, injected = run_round(
                protocol=self.protocol,
                m=self.m,
                node_names=node_names,
                background_frames=self.background_frames,
                noise_ber_star=self.noise_ber_star,
                attacked=attacked,
                victim=victim,
                rng=rng,
            )
            result.rounds.append(
                (round_index, attacked, classify_counts(counts), injected)
            )
        return result


# ---------------------------------------------------------------------------
# Sweep / reliability tasks (one row each — coarse-grained fan-out)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AblationRowTask:
    """One m-value row of the m-choice ablation (experiment E-ABL)."""

    m: int
    tail_flips: int
    check_f1: bool
    n_nodes: int
    backend: str = "engine"

    def run(self):
        from repro.analysis.sweeps import ablation_row

        return ablation_row(
            m=self.m,
            tail_flips=self.tail_flips,
            check_f1=self.check_f1,
            n_nodes=self.n_nodes,
            backend=self.backend,
        )


@dataclass(frozen=True)
class ReliabilityTask:
    """The protocol-comparison rows for one bit-error rate."""

    ber: float
    mission_hours: Tuple[float, ...]
    profile: object  # NetworkProfile (a picklable dataclass)
    #: ``None`` keeps the closed-form rates; ``"engine"``/``"batch"``
    #: derive them from the enumerated tail-pattern universe instead.
    backend: object = None
    m: int = 5

    def run(self):
        from repro.analysis.reliability import reliability_comparison

        return reliability_comparison(
            self.ber,
            mission_hours=self.mission_hours,
            profile=self.profile,
            backend=self.backend,  # type: ignore[arg-type]
            m=self.m,
        )


# ---------------------------------------------------------------------------
# Design-space sweep chunks
# ---------------------------------------------------------------------------

#: One sweep cell as plain values, in :class:`repro.sweep.spec.SweepCell`
#: field order: (protocol, m, ber, bit_rate, bus_length_m, payload, n_nodes).
CellValues = Tuple[str, int, float, float, float, int, int]


@dataclass(frozen=True)
class SweepCellChunk:
    """A chunk of design-space sweep cells (``repro.sweep``).

    Carries only the cell coordinates and the spec-level constants —
    the warmed frame tables and site universes the cells share arrive
    through the pool's worker context (broadcast once per fork), not
    through the task.  ``run()`` returns one complete store record per
    cell, keys included, so the driver appends them verbatim.
    """

    cells: Tuple[CellValues, ...]
    window: int
    max_flips: int
    load: float
    backend: str = "batch"

    def run(self) -> List[dict]:
        from repro.sweep.cell import cell_record
        from repro.sweep.spec import SweepCell

        return [
            cell_record(
                SweepCell(*values),
                window=self.window,
                max_flips=self.max_flips,
                load=self.load,
                backend=self.backend,
            )
            for values in self.cells
        ]


#: One traffic-surface cell as plain values, in
#: :class:`repro.sweep.spec.TrafficCell` field order:
#: (protocol, m, n_nodes, load, source, noise_ber).
TrafficCellValues = Tuple[str, int, int, float, str, float]


@dataclass(frozen=True)
class TrafficCellChunk:
    """A chunk of measured-under-load sweep cells (``surface="traffic"``).

    Each cell runs a steady-state ``repro.traffic`` spec serially
    inside the worker (``jobs=1``) — the fan-out unit is the cell, not
    the window — on the frame-granular batch backend by default.  The
    wire images the batch windows share arrive through the pool's
    worker context (``repro.traffic.batch.warm_traffic``), not through
    the task.
    """

    cells: Tuple[TrafficCellValues, ...]
    windows: int
    window_bits: int
    seed: int
    backend: str = "batch"

    def run(self) -> List[dict]:
        from repro.sweep.cell import traffic_cell_record
        from repro.sweep.spec import TrafficCell

        return [
            traffic_cell_record(
                TrafficCell(*values),
                windows=self.windows,
                window_bits=self.window_bits,
                seed=self.seed,
                backend=self.backend,
            )
            for values in self.cells
        ]


# ---------------------------------------------------------------------------
# Trace-store corpus checks (one recording replayed per task)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusCheckTask:
    """Replay one recorded trace and diff it against the recording.

    Used by ``repro.tracestore.corpus.check_corpus`` to fan the golden
    corpus out over the pool.  Replays are deterministic, so the result
    is independent of which worker runs the task.
    """

    path: str

    def run(self):
        from repro.tracestore.corpus import check_recording

        return check_recording(self.path)


@dataclass(frozen=True)
class TrafficWindowTask:
    """Run one time window of a sharded traffic run.

    Pure in its inputs: the frozen spec, the window index, the
    window's slice of the precomputed submission schedule, and the
    spawned child seed for the window's noise injector.  The driver
    (``repro.traffic.run.run_traffic``) splices the results in window
    order, so the ledger is bit-identical for any worker count.
    """

    spec: object
    window: int
    submissions: Tuple[object, ...]
    noise_seed: object = None
    backend: str = "engine"

    def run(self):
        from repro.traffic.run import run_window

        return run_window(
            self.spec,
            self.window,
            self.submissions,
            self.noise_seed,
            backend=self.backend,
        )
