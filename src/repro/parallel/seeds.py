"""Deterministic randomness splitting for parallel workloads.

The aggregate result of a chunked workload must not depend on how many
workers executed it.  To get that, the *parent* process splits its seed
into one independent child stream per chunk with
``numpy.random.SeedSequence.spawn`` — the spawn tree depends only on
the root seed and the chunk count, never on the worker layout — and
every chunk creates its generator from its own child.  Serial runs use
the exact same children in the exact same order, so ``jobs=1`` and
``jobs=N`` are bit-identical.
"""

from __future__ import annotations

from typing import List, Union

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by numpy-less installs
    np = None

#: Everything a chunk can carry across a process boundary as its seed.
#: ``SeedSequence`` and ``Generator`` both pickle cleanly.
ChildSeed = Union["np.random.SeedSequence", "np.random.Generator"]

SeedLike = Union[int, None, "np.random.SeedSequence", "np.random.Generator"]


def _require_numpy() -> None:
    if np is None:
        raise ImportError(
            "numpy is required for deterministic seed splitting; "
            "install the 'repro[fast]' extra"
        )


def spawn_seeds(seed: SeedLike, count: int) -> List[ChildSeed]:
    """Split ``seed`` into ``count`` independent child seeds.

    Accepts an integer, ``None`` (OS entropy, drawn once in the parent
    so the children still form one coherent spawn tree), an existing
    ``SeedSequence``, or a ``Generator`` (split with ``Generator.spawn``
    so callers sharing a stream keep their reproducibility).
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %d" % count)
    _require_numpy()
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(count))
    if isinstance(seed, np.random.SeedSequence):
        return list(seed.spawn(count))
    return list(np.random.SeedSequence(seed).spawn(count))


def rng_from(child: ChildSeed) -> "np.random.Generator":
    """Instantiate the generator for one spawned child seed."""
    _require_numpy()
    if isinstance(child, np.random.Generator):
        return child
    return np.random.default_rng(child)


def adaptive_chunk(
    base: int, cost_units: float, floor: int = 8, cap: int = 4096
) -> int:
    """Scale a baseline chunk size by the relative per-item cost.

    ``cost_units`` expresses how expensive one item is relative to the
    configuration the baseline was tuned for (1.0 = the baseline
    configuration): costlier items get proportionally smaller chunks,
    cheaper items larger ones, so per-chunk wall-clock stays roughly
    constant as problem parameters scale.  The result is clamped to
    ``[floor, cap]`` and depends only on the arguments — never on the
    worker count — because the chunk partition is part of the
    experiment identity (for seeded workloads it shapes the seed spawn
    tree, so it is recorded alongside results).
    """
    if base < 1:
        raise ValueError("base chunk must be positive, got %d" % base)
    if not cost_units > 0:
        raise ValueError("cost_units must be positive, got %r" % cost_units)
    if floor < 1 or cap < floor:
        raise ValueError("need 1 <= floor <= cap, got %d..%d" % (floor, cap))
    return max(floor, min(cap, int(round(base / cost_units))))


def chunk_sizes(total: int, chunk: int) -> List[int]:
    """Partition ``total`` items into fixed-size chunks (last may be short).

    The partition depends only on ``total`` and ``chunk`` — never on the
    worker count — which is what keeps parallel runs deterministic.
    """
    if total < 0:
        raise ValueError("total must be non-negative, got %d" % total)
    if chunk < 1:
        raise ValueError("chunk size must be positive, got %d" % chunk)
    sizes = [chunk] * (total // chunk)
    if total % chunk:
        sizes.append(total % chunk)
    return sizes
