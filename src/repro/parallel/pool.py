"""The worker pool: fan picklable tasks out over processes.

``run_tasks`` is the single entry point the analysis layer uses.  Its
contract:

* ``jobs=1`` executes tasks inline in submission order — byte-for-byte
  the serial behaviour, with no ``multiprocessing`` machinery touched;
* ``jobs>1`` maps the same tasks over a process pool, *preserving
  submission order* in the returned results, so merging partial results
  is identical either way;
* if a pool cannot be created (sandboxes without semaphore support,
  restricted platforms), it silently falls back to the serial path —
  the results are the same, only slower.

``jobs=None``/``0`` resolves through ``REPRO_JOBS`` (then 1) and a
negative ``jobs`` means "all visible CPUs".
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterable, List, Optional

from repro.parallel.tasks import execute


def cpu_count() -> int:
    """Number of CPUs this process may actually use."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def effective_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` request to a concrete worker count.

    ``None``/``0`` consult the ``REPRO_JOBS`` environment variable and
    default to 1 (serial); negative values mean every visible CPU.
    """
    if jobs is None or jobs == 0:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = 1
        else:
            jobs = 1
    if jobs < 0:
        jobs = cpu_count()
    return max(1, jobs)


def run_tasks(tasks: Iterable, jobs: Optional[int] = None, chunksize: int = 1) -> List:
    """Execute ``tasks`` and return their results in submission order.

    ``tasks`` may be any iterable of objects with a ``run()`` method
    (see :mod:`repro.parallel.tasks`); generators are consumed lazily
    on the parallel path via ``imap``.
    """
    workers = effective_jobs(jobs)
    if workers == 1:
        return [execute(task) for task in tasks]
    task_list = tasks if isinstance(tasks, (list, tuple)) else None
    try:
        context = multiprocessing.get_context()
        pool = context.Pool(processes=workers)
    except (ImportError, OSError, PermissionError, ValueError):
        # No process support here (e.g. sandboxed semaphores): degrade
        # gracefully — same results, serial execution.
        return [execute(task) for task in (task_list if task_list is not None else tasks)]
    try:
        source = task_list if task_list is not None else tasks
        return list(pool.imap(execute, source, chunksize))
    finally:
        pool.close()
        pool.join()
