"""The worker pool: fan picklable tasks out over processes.

``run_tasks`` is the single entry point the analysis layer uses.  Its
contract:

* ``jobs=1`` executes tasks inline in submission order — byte-for-byte
  the serial behaviour, with no ``multiprocessing`` machinery touched;
* ``jobs>1`` maps the same tasks over a process pool, *preserving
  submission order* in the returned results, so merging partial results
  is identical either way;
* if a pool cannot be created (sandboxes without semaphore support,
  restricted platforms), it silently falls back to the serial path —
  the results are the same, only slower.

``jobs=None``/``0`` resolves through ``REPRO_JOBS`` (then 1) and a
negative ``jobs`` means "all visible CPUs".

The pool itself is created lazily and *reused* across ``run_tasks``
calls: CLI subcommands and sweeps that fan out repeatedly (ablation
rows, chunked verification, Monte-Carlo batches) pay the process
start-up and import cost once instead of per call.  The cached pool is
replaced when a different worker count is requested, recycled by
``maxtasksperchild`` to bound worker memory growth, discarded on any
failure mid-map, and torn down at interpreter exit.  None of this
changes results: tasks are deterministic functions of their own fields,
so which process runs them — fresh or reused — is unobservable.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from typing import Iterable, List, Optional

from repro.parallel.tasks import execute

#: Tasks a worker processes before it is replaced.  High enough that
#: recycling never dominates, low enough to bound the memory of
#: long-lived workers accumulating per-task allocations.
MAXTASKSPERCHILD = 512

_POOL = None
_POOL_WORKERS = 0
#: Context the live pool's workers were initialised with.
_POOL_CONTEXT: tuple = ()
#: Context requested for the next pool (see :func:`set_worker_context`).
_CONTEXT: tuple = ()


def cpu_count() -> int:
    """Number of CPUs this process may actually use."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def effective_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` request to a concrete worker count.

    ``None``/``0`` consult the ``REPRO_JOBS`` environment variable and
    default to 1 (serial); negative values mean every visible CPU.
    """
    if jobs is None or jobs == 0:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = 1
        else:
            jobs = 1
    if jobs < 0:
        jobs = cpu_count()
    return max(1, jobs)


def set_worker_context(entries) -> None:
    """Declare what new pool workers should pre-warm at fork time.

    ``entries`` is a sequence of ``(module, function, args)`` triples —
    all picklable — that each new worker applies once in its
    initializer, after the default :func:`warm_shapes` pass.  This is
    the shared-memory half of task batching: a sweep broadcasts its
    warmed site universes and frame tables to every worker *once per
    fork* through the pool's ``initargs`` instead of pickling them into
    every task.  Changing the context replaces the pool on the next
    ``run_tasks``/``imap_tasks`` call; an equal context reuses it, so
    repeated sweeps over the same universe keep their warm workers.
    """
    global _CONTEXT
    normalised = []
    for entry in entries:
        module, function, args = entry
        if not isinstance(module, str) or not isinstance(function, str):
            raise ValueError(
                "worker context entries are (module, function, args) "
                "triples, got %r" % (entry,)
            )
        normalised.append((module, function, tuple(args)))
    _CONTEXT = tuple(normalised)


def worker_context() -> tuple:
    """The context new pool workers will be initialised with."""
    return _CONTEXT


def _warm_worker(context: tuple = ()) -> None:
    """Worker initializer: pre-expand the shared campaign shapes.

    Populates the ``wire_program``/``tail_shape``/``header_shape``
    caches for the default campaign frame once per worker process, then
    applies the broadcast worker context (warmed sweep universes, frame
    tables), so every chunk the worker later receives starts from warm
    caches instead of re-expanding per chunk (shared-memory task
    batching: the expanded context is installed at fork time, not
    shipped with each task).  Purely an optimisation — tasks rebuild
    anything missing on demand — so failures are swallowed.
    """
    try:
        from repro.analysis.batchreplay import warm_shapes

        warm_shapes()
    except Exception:  # pragma: no cover - warm-up must never kill a worker
        pass
    for module_name, function_name, args in context:
        try:
            module = __import__(module_name, fromlist=[function_name])
            getattr(module, function_name)(*args)
        except Exception:  # pragma: no cover - warm-up must never kill a worker
            continue


def _get_pool(workers: int):
    """Return the shared pool for ``workers``, creating or resizing it.

    The cached pool is reused only when both the worker count and the
    worker context match what it was built with.  Returns ``None`` when
    no pool can be created on this platform.
    """
    global _POOL, _POOL_WORKERS, _POOL_CONTEXT
    if _POOL is not None and _POOL_WORKERS == workers and _POOL_CONTEXT == _CONTEXT:
        return _POOL
    if _POOL is not None:
        shutdown_pool()
    try:
        context = multiprocessing.get_context()
        _POOL = context.Pool(
            processes=workers,
            initializer=_warm_worker,
            initargs=(_CONTEXT,),
            maxtasksperchild=MAXTASKSPERCHILD,
        )
        _POOL_WORKERS = workers
        _POOL_CONTEXT = _CONTEXT
    except (ImportError, OSError, PermissionError, ValueError):
        _POOL = None
        _POOL_WORKERS = 0
        _POOL_CONTEXT = ()
    return _POOL


def _discard_pool() -> None:
    """Drop a pool whose state is suspect (an exception escaped a map)."""
    global _POOL, _POOL_WORKERS, _POOL_CONTEXT
    if _POOL is not None:
        try:
            _POOL.terminate()
            _POOL.join()
        except Exception:
            pass
    _POOL = None
    _POOL_WORKERS = 0
    _POOL_CONTEXT = ()


def shutdown_pool() -> None:
    """Tear down the shared pool (idempotent; also runs at exit)."""
    global _POOL, _POOL_WORKERS, _POOL_CONTEXT
    if _POOL is not None:
        try:
            _POOL.close()
            _POOL.join()
        except Exception:
            _discard_pool()
            return
    _POOL = None
    _POOL_WORKERS = 0
    _POOL_CONTEXT = ()


atexit.register(shutdown_pool)


def run_tasks(tasks: Iterable, jobs: Optional[int] = None, chunksize: int = 1) -> List:
    """Execute ``tasks`` and return their results in submission order.

    ``tasks`` may be any iterable of objects with a ``run()`` method
    (see :mod:`repro.parallel.tasks`); generators are consumed lazily
    on the parallel path via ``imap``.
    """
    workers = effective_jobs(jobs)
    if workers == 1:
        return [execute(task) for task in tasks]
    task_list = tasks if isinstance(tasks, (list, tuple)) else None
    pool = _get_pool(workers)
    if pool is None:
        # No process support here (e.g. sandboxed semaphores): degrade
        # gracefully — same results, serial execution.
        return [execute(task) for task in (task_list if task_list is not None else tasks)]
    source = task_list if task_list is not None else tasks
    try:
        return list(pool.imap(execute, source, chunksize))
    except BaseException:
        # A worker died or a task raised: the pool may hold queued
        # work, so never hand it to the next caller.
        _discard_pool()
        raise


def imap_tasks(tasks: Iterable, jobs: Optional[int] = None, chunksize: int = 1):
    """Yield task results one by one, in submission order.

    The streaming twin of :func:`run_tasks`, for drivers that persist
    partial results as they arrive (the sweep engine appends each chunk
    to its store the moment it completes, so an interrupted run keeps
    everything finished so far).  Same contract otherwise: ``jobs=1``
    executes inline, the pool path preserves submission order, and pool
    failure degrades to the serial path.
    """
    workers = effective_jobs(jobs)
    if workers == 1:
        for task in tasks:
            yield execute(task)
        return
    source = tasks if isinstance(tasks, (list, tuple)) else list(tasks)
    pool = _get_pool(workers)
    if pool is None:
        for task in source:
            yield execute(task)
        return
    iterator = pool.imap(execute, source, chunksize)
    while True:
        try:
            result = next(iterator)
        except StopIteration:
            return
        except BaseException:
            _discard_pool()
            raise
        try:
            yield result
        except BaseException:
            # The consumer abandoned the stream (GeneratorExit) or threw
            # into it: queued chunks may still be in flight, so the pool
            # is not safe to hand to the next caller.
            _discard_pool()
            raise
