"""The shared bus medium.

A CAN bus is a wired-AND channel: the bus carries a dominant level
whenever at least one node drives dominant.  :class:`Bus` resolves the
levels driven by all nodes each bit time and keeps a short history for
traces and tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.can.bits import Level, wired_and


class Bus:
    """Wired-AND resolution of per-node drive levels."""

    def __init__(self) -> None:
        self.history: List[Level] = []

    def resolve(self, drives: Dict[str, Level]) -> Level:
        """Combine one bit time's drive levels into the bus level."""
        level = wired_and(drives.values())
        self.history.append(level)
        return level

    def push(self, level: Level) -> Level:
        """Record a bus level resolved by the caller (engine fast path)."""
        self.history.append(level)
        return level

    @property
    def time(self) -> int:
        """Number of bit times resolved so far."""
        return len(self.history)

    def idle_tail(self) -> int:
        """Length of the trailing run of recessive bits on the bus."""
        count = 0
        for level in reversed(self.history):
            if level is not Level.RECESSIVE:
                break
            count += 1
        return count

    def as_string(self, start: int = 0, end: int = None) -> str:
        """Render a slice of the bus history as a ``d``/``r`` string."""
        levels = self.history[start:end]
        return "".join(level.symbol for level in levels)
