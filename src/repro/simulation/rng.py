"""Deterministic random-number helpers.

All stochastic components of the library (random bit-error injection,
workload generation, Monte-Carlo studies) draw from numpy generators
created through :func:`make_rng`, so every experiment is reproducible
from its seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a numpy random generator for ``seed``.

    Accepts an integer seed, an existing generator (returned as-is, so
    components can share a stream), or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=count)]
