"""Deterministic random-number helpers.

All stochastic components of the library (random bit-error injection,
workload generation, Monte-Carlo studies) draw from numpy generators
created through :func:`make_rng`, so every experiment is reproducible
from its seed.

numpy ships with the ``repro[fast]`` extra.  The deterministic parts
of the library (protocol engine, scenarios, verification, batch
replay) never touch this module, so the import is guarded and only
actually *using* a generator without numpy raises.
"""

from __future__ import annotations

from typing import Union

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by numpy-less installs
    np = None

SeedLike = Union[int, "np.random.Generator", None]


def _require_numpy() -> None:
    if np is None:
        raise ImportError(
            "numpy is required for seeded random generators; "
            "install the 'repro[fast]' extra"
        )


def make_rng(seed: SeedLike = None) -> "np.random.Generator":
    """Return a numpy random generator for ``seed``.

    Accepts an integer seed, an existing generator (returned as-is, so
    components can share a stream), or ``None`` for OS entropy.
    """
    _require_numpy()
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: "np.random.Generator", count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``."""
    _require_numpy()
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=count)]
