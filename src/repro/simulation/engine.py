"""The bit-synchronous simulation engine.

The engine advances all attached controllers in lockstep, one bus bit
time per step, following the model in DESIGN.md:

1. every controller announces the level it drives (and its
   frame-relative position);
2. the fault injector may perturb driven levels (physical transmit
   faults);
3. the bus resolves the wired-AND level;
4. the fault injector may perturb *each node's view* of the bus level
   — this is the paper's error model, in which a bit error affects "a
   node's particular view of the bit" with probability
   ``ber* = ber / N``;
5. every controller consumes its view and steps its state machine;
6. application-layer hooks run (timeouts of the higher-level
   protocols).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence

from repro.can.bits import Level
from repro.can.controller import CanController, STATE_IDLE
from repro.errors import SimulationError
from repro.simulation.bus import Bus
from repro.simulation.trace import BitRecord, Trace


class FaultInjector:
    """Base (no-op) fault injector; see :mod:`repro.faults` for real ones.

    Subclasses override :meth:`perturb_drive` and/or :meth:`perturb_view`.
    Both receive the controller object, so injectors can trigger on the
    node's announced frame position (``controller.position``).
    """

    def perturb_drive(self, node: CanController, time: int, level: Level) -> Level:
        """Physical-layer fault on the level ``node`` drives at ``time``."""
        return level

    def perturb_view(self, node: CanController, time: int, bus_level: Level) -> Level:
        """Fault on the level ``node`` observes at ``time``."""
        return bus_level

    def on_bit_start(self, time: int, nodes: Sequence[CanController]) -> None:
        """Hook called once per bit time before any perturbation."""


class SimulationEngine:
    """Lockstep simulator for a set of CAN-family controllers."""

    def __init__(
        self,
        nodes: Optional[Sequence[CanController]] = None,
        injector: Optional[FaultInjector] = None,
        record_bits: bool = True,
    ) -> None:
        self.nodes: List[CanController] = list(nodes or [])
        self.injector = injector or FaultInjector()
        self.bus = Bus()
        self.trace = Trace(record_bits=record_bits)
        self.time = 0
        self._tick_hooks: List[Callable[[int], None]] = []
        self._nodes_by_name: Dict[str, CanController] = {}
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise SimulationError("node names must be unique: %r" % names)
        self._nodes_by_name = {node.name: node for node in self.nodes}
        injector_type = type(self.injector)
        self._injector_drives = (
            injector_type.perturb_drive is not FaultInjector.perturb_drive
        )
        self._injector_views = (
            injector_type.perturb_view is not FaultInjector.perturb_view
        )
        self._injector_bit_start = (
            injector_type.on_bit_start is not FaultInjector.on_bit_start
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def attach(self, node: CanController) -> CanController:
        """Attach another controller to the bus."""
        if len(self._nodes_by_name) != len(self.nodes):
            self._nodes_by_name = {n.name: n for n in self.nodes}
        if node.name in self._nodes_by_name:
            raise SimulationError("duplicate node name %r" % node.name)
        self.nodes.append(node)
        self._nodes_by_name[node.name] = node
        return node

    def node(self, name: str) -> CanController:
        """Look up an attached controller by name (O(1) via an index)."""
        if len(self._nodes_by_name) != len(self.nodes):
            # self.nodes was mutated directly; rebuild the index.
            self._nodes_by_name = {n.name: n for n in self.nodes}
        try:
            return self._nodes_by_name[name]
        except KeyError:
            raise SimulationError("no node named %r" % name)

    def add_tick_hook(self, hook: Callable[[int], None]) -> None:
        """Register a callable invoked after every simulated bit time.

        Higher-level protocol layers use tick hooks for their timeout
        logic; the hook receives the bit time that just completed.
        """
        self._tick_hooks.append(hook)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self) -> Level:
        """Advance the simulation by one bus bit time."""
        if not self.nodes:
            raise SimulationError("cannot simulate an empty bus")
        if not self.trace.record_bits:
            return self._step_fast()
        time = self.time
        self.injector.on_bit_start(time, self.nodes)
        drives: Dict[str, Level] = {}
        for node in self.nodes:
            node.now = time
            driven = node.drive()
            drives[node.name] = self.injector.perturb_drive(node, time, driven)
        bus_level = self.bus.resolve(drives)
        views: Dict[str, Level] = {}
        positions = {node.name: node.position for node in self.nodes}
        states = {node.name: node.state for node in self.nodes}
        for node in self.nodes:
            view = self.injector.perturb_view(node, time, bus_level)
            views[node.name] = view
            node.on_bit(view)
        self.trace.record(
            BitRecord(
                time=time,
                bus=bus_level,
                drives=drives,
                views=views,
                positions=positions,
                states=states,
            )
        )
        if self._tick_hooks:
            for hook in self._tick_hooks:
                hook(time)
        self.time += 1
        return bus_level

    def _step_fast(self) -> Level:
        """One bit time without per-bit dict/record construction.

        Semantically identical to the recording path — same perturb and
        ``on_bit`` call order per node — but skips the ``drives`` /
        ``views`` / ``positions`` / ``states`` dicts and the
        :class:`BitRecord` (which :meth:`Trace.record` would discard
        anyway), and skips injector calls the injector never overrode.
        """
        nodes = self.nodes
        injector = self.injector
        time = self.time
        if self._injector_bit_start:
            injector.on_bit_start(time, nodes)
        level = Level.RECESSIVE
        if self._injector_drives:
            for node in nodes:
                node.now = time
                if injector.perturb_drive(node, time, node.drive()) is Level.DOMINANT:
                    level = Level.DOMINANT
        else:
            for node in nodes:
                node.now = time
                if node.drive() is Level.DOMINANT:
                    level = Level.DOMINANT
        self.bus.push(level)
        if self._injector_views:
            for node in nodes:
                node.on_bit(injector.perturb_view(node, time, level))
        else:
            for node in nodes:
                node.on_bit(level)
        if self._tick_hooks:
            for hook in self._tick_hooks:
                hook(time)
        self.time += 1
        return level

    def run(self, bits: int) -> None:
        """Advance the simulation by ``bits`` bit times."""
        step = self.step
        for _ in range(bits):
            step()

    def run_until_idle(self, max_bits: int = 100000, settle_bits: int = 12) -> int:
        """Run until the bus has been quiet for ``settle_bits`` bits.

        Quiet means: every node is idle (or offline), no transmissions
        are pending, and the bus floats recessive.  Returns the number
        of bits simulated by this call.

        Raises
        ------
        SimulationError
            If the bus does not become idle within ``max_bits``.
        """
        quiet = 0
        step = self.step
        for elapsed in range(max_bits):
            level = step()
            if level is Level.RECESSIVE and self._all_idle():
                quiet += 1
                if quiet >= settle_bits:
                    return elapsed + 1
            else:
                quiet = 0
        raise SimulationError(
            "bus did not become idle within %d bits" % max_bits
        )

    def _all_idle(self) -> bool:
        for node in self.nodes:
            if node.offline:
                continue
            if node.state != STATE_IDLE:
                return False
            if node.pending_transmissions:
                return False
        return True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def collect_events(self) -> Trace:
        """Merge all controller events into the trace and return it.

        Each controller's event stream is already time-ordered (events
        are emitted at the monotonically advancing ``now``), so an
        N-way sorted merge suffices — no full re-sort.
        """
        self.trace.events = list(
            heapq.merge(
                *(node.events for node in self.nodes),
                key=lambda event: event.time,
            )
        )
        return self.trace
