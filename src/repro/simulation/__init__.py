"""Bit-synchronous bus simulation substrate."""

from repro.simulation.bus import Bus
from repro.simulation.engine import FaultInjector, SimulationEngine
from repro.simulation.rng import make_rng, spawn
from repro.simulation.trace import BitRecord, Trace

__all__ = [
    "BitRecord",
    "Bus",
    "FaultInjector",
    "SimulationEngine",
    "Trace",
    "make_rng",
    "spawn",
]
