"""Simulation traces.

A :class:`Trace` records, for every bit time, the level each node drove,
the resolved bus level, the (possibly fault-perturbed) level each node
observed, and each node's frame-relative position.  The renderer can
reproduce the d/r timeline diagrams used in the figures of the paper.
"""

from __future__ import annotations

import heapq
import operator
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.can.bits import Level
from repro.can.events import Event
from repro.errors import TraceError


@dataclass
class BitRecord:
    """Everything observable on the bus during one bit time."""

    time: int
    bus: Level
    drives: Dict[str, Level]
    views: Dict[str, Level]
    positions: Dict[str, Tuple[str, int]]
    states: Dict[str, str]


@dataclass
class Trace:
    """Recorded simulation history."""

    record_bits: bool = True
    bits: List[BitRecord] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)

    def record(self, record: BitRecord) -> None:
        """Append one bit record (no-op when bit recording is off)."""
        if self.record_bits:
            self.bits.append(record)

    def add_events(self, events: Iterable[Event]) -> None:
        """Merge controller events into the trace, keeping time order.

        The incoming batch is sorted on its own (cheap: controller
        streams arrive nearly sorted, which timsort exploits) and then
        merged with the already-sorted trace in O(n + k) — repeated
        merges no longer re-sort the full accumulated list.

        Precondition: ``self.events`` must already be time-sorted.
        That invariant holds as long as the list is only populated via
        :meth:`add_events` / :meth:`SimulationEngine.collect_events`;
        callers assigning ``trace.events`` directly must keep it sorted
        (the guard below surfaces violations before a silent bad merge).
        """
        key = operator.attrgetter("time")
        incoming = sorted(events, key=key)
        if not incoming:
            return
        if not self.events:
            self.events = incoming
            return
        existing = self.events
        if any(
            existing[i].time > existing[i + 1].time for i in range(len(existing) - 1)
        ):
            raise TraceError(
                "Trace.events is not time-sorted; it was mutated outside "
                "add_events/collect_events — sort it before merging"
            )
        self.events = list(heapq.merge(existing, incoming, key=key))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events_of_kind(self, kind: str, node: Optional[str] = None) -> List[Event]:
        """Events matching ``kind`` (and optionally a node name)."""
        return [
            event
            for event in self.events
            if event.kind == kind and (node is None or event.node == node)
        ]

    def node_view_string(self, node: str, start: int = 0, end: Optional[int] = None) -> str:
        """The d/r string of what ``node`` observed over a time span."""
        return "".join(
            record.views[node].symbol for record in self.bits[start:end] if node in record.views
        )

    def bus_string(self, start: int = 0, end: Optional[int] = None) -> str:
        """The d/r string of the resolved bus level over a time span."""
        return "".join(record.bus.symbol for record in self.bits[start:end])

    def position_times(self, node: str, field_name: str, index: int) -> List[int]:
        """Bit times at which ``node`` was at ``(field_name, index)``."""
        return [
            record.time
            for record in self.bits
            if record.positions.get(node) == (field_name, index)
        ]

    # ------------------------------------------------------------------
    # Rendering (paper-figure style)
    # ------------------------------------------------------------------

    def render_timeline(
        self,
        nodes: Iterable[str],
        start: int = 0,
        end: Optional[int] = None,
        with_bus: bool = True,
    ) -> str:
        """Render per-node observed levels as aligned d/r rows.

        The output format mirrors the figures of the paper: one row per
        node plus (optionally) the resolved bus level.
        """
        rows = []
        width = max((len(name) for name in nodes), default=3)
        width = max(width, 3)
        for name in nodes:
            rows.append(
                "%-*s | %s" % (width, name, self.node_view_string(name, start, end))
            )
        if with_bus:
            rows.append("%-*s | %s" % (width, "bus", self.bus_string(start, end)))
        return "\n".join(rows)
