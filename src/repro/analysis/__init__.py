"""Analytical models: probabilities (eq. 1-5), Table 1, overheads."""

from repro.analysis.batchreplay import (
    HAVE_NUMPY,
    BatchReplayEvaluator,
    PlacementOutcome,
    classify_placements,
    tail_shape,
)
from repro.analysis.enumeration import (
    EnumerationResult,
    PatternOutcome,
    enumerate_tail_patterns,
    equation4_tail_prediction,
)
from repro.analysis.overhead import (
    MeasuredOverhead,
    best_case_overhead_bits,
    higher_level_protocol_overhead_bits,
    measured_overhead,
    worst_case_extension_bits,
    worst_case_overhead_bits,
)
from repro.analysis.probability import (
    dominant_term_ratio,
    p_new_scenario_per_frame,
    p_old_scenario_per_frame,
)
from repro.analysis.rates import (
    hours_between_incidents,
    incidents_per_hour,
    meets_reference,
)
from repro.analysis.geometry import (
    GeometryCheck,
    derive_geometry,
    geometry_report,
    verify_geometry,
)
from repro.analysis.montecarlo import (
    MonteCarloResult,
    monte_carlo_full,
    monte_carlo_tail,
    wilson_interval,
)
from repro.analysis.reliability import (
    ReliabilityRow,
    hours_to_reliability,
    mean_time_to_failure_hours,
    mission_reliability,
    reliability_comparison,
)
from repro.analysis.residual import (
    ResidualRow,
    p_more_than_m_errors,
    residual_rate_tail_bound,
    residual_rate_upper_bound,
    residual_table,
    smallest_m_meeting_target,
)
from repro.analysis.sweeps import (
    MAblationRow,
    OmissionDegreeRevision,
    SweepPoint,
    imo_rate_sweep,
    m_ablation,
    omission_degree_revision,
)
from repro.analysis.verification import (
    Counterexample,
    VerificationResult,
    header_sites,
    tail_sites,
    verify_consistency,
)
from repro.analysis.table1 import (
    PAPER_TABLE1,
    RUFINO_IMO_PER_HOUR,
    Table1Row,
    generate_table1,
    relative_error,
    render_table1,
)

__all__ = [
    "BatchReplayEvaluator",
    "Counterexample",
    "HAVE_NUMPY",
    "PlacementOutcome",
    "classify_placements",
    "tail_shape",
    "MAblationRow",
    "MonteCarloResult",
    "OmissionDegreeRevision",
    "ReliabilityRow",
    "ResidualRow",
    "SweepPoint",
    "EnumerationResult",
    "GeometryCheck",
    "MeasuredOverhead",
    "PAPER_TABLE1",
    "PatternOutcome",
    "RUFINO_IMO_PER_HOUR",
    "Table1Row",
    "best_case_overhead_bits",
    "derive_geometry",
    "dominant_term_ratio",
    "enumerate_tail_patterns",
    "equation4_tail_prediction",
    "generate_table1",
    "geometry_report",
    "higher_level_protocol_overhead_bits",
    "hours_between_incidents",
    "hours_to_reliability",
    "incidents_per_hour",
    "imo_rate_sweep",
    "m_ablation",
    "mean_time_to_failure_hours",
    "mission_reliability",
    "measured_overhead",
    "meets_reference",
    "monte_carlo_full",
    "monte_carlo_tail",
    "omission_degree_revision",
    "p_more_than_m_errors",
    "p_new_scenario_per_frame",
    "p_old_scenario_per_frame",
    "relative_error",
    "reliability_comparison",
    "residual_rate_tail_bound",
    "residual_rate_upper_bound",
    "residual_table",
    "smallest_m_meeting_target",
    "render_table1",
    "VerificationResult",
    "header_sites",
    "tail_sites",
    "verify_consistency",
    "verify_geometry",
    "wilson_interval",
    "worst_case_extension_bits",
    "worst_case_overhead_bits",
]
