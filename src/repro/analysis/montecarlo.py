"""Monte-Carlo validation of the probability model (experiment E-MC).

Two sampling modes complement the exact enumeration of
:mod:`repro.analysis.enumeration`:

* :func:`monte_carlo_tail` — samples error patterns over the same
  tail window as the enumeration (each site flipped independently with
  probability ``ber*``) and classifies each sampled frame with the
  bit-level simulator.  Its estimate converges to the enumeration's
  exact probability, providing a stochastic-vs-exhaustive
  cross-validation of the whole pipeline.
* :func:`monte_carlo_full` — unrestricted per-bit view errors over the
  entire frame at an inflated ``ber``, checking the qualitative
  scaling of the inconsistency rate (the IMO probability grows
  quadratically in ``ber*``, the signature of the two-error Fig. 3a
  pattern).

Direct sampling at the paper's operational rates (``ber <= 1e-4``,
per-frame probabilities around 1e-10) is computationally meaningless
for any simulator — the paper itself evaluates Table 1 analytically —
which is why the reproduction validates the *model* at tractable error
rates and the *numbers* with the closed forms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import AnalysisError
from repro.faults.scenarios import make_controller
from repro.parallel.pool import run_tasks
from repro.parallel.seeds import adaptive_chunk, chunk_sizes, spawn_seeds
from repro.parallel.tasks import ChunkCounts, MonteCarloFullChunk, MonteCarloTailChunk
from repro.simulation.rng import SeedLike

#: Baseline trials per task chunk, tuned for the canonical three-node
#: universe.  Fixed regardless of ``jobs`` so the seed spawn tree — and
#: therefore every aggregate count — is identical for serial and
#: parallel runs of the same seed.  The default ``chunk_trials=None``
#: adapts this baseline to the node count (larger universes mean
#: costlier trials, so smaller chunks) but never to the backend: the
#: partition shapes the spawn tree, and engine and batch backends must
#: draw identical placements for the same seed.
CHUNK_TRIALS = 32


def _adaptive_chunk_trials(n_nodes: int) -> int:
    """Resolve the default chunk size for an ``n_nodes`` universe."""
    return adaptive_chunk(CHUNK_TRIALS, n_nodes / 3.0)


@dataclass
class MonteCarloResult:
    """Aggregated classification counts of sampled frames."""

    trials: int
    imo: int = 0
    double_reception: int = 0
    inconsistent: int = 0
    no_fault_trials: int = 0
    flips_total: int = 0
    #: Merged batch-backend provenance counters (None on the engine
    #: backend): how many sampled placements the array pass, the scalar
    #: micro-sim, the header class cache and the engine fallback each
    #: classified.
    backend_stats: Optional[dict] = None
    #: Resolved trials-per-chunk of this run.  Part of the experiment
    #: identity: it shapes the seed spawn tree, so re-running with a
    #: different value changes the sampled placements.
    chunk_trials: Optional[int] = None

    @property
    def p_imo(self) -> float:
        """Point estimate of the per-frame IMO probability."""
        return self.imo / self.trials if self.trials else 0.0

    @property
    def p_inconsistent(self) -> float:
        return self.inconsistent / self.trials if self.trials else 0.0

    @property
    def p_double(self) -> float:
        return self.double_reception / self.trials if self.trials else 0.0

    def imo_confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for the IMO probability."""
        return wilson_interval(self.imo, self.trials, z)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion."""
    if trials <= 0:
        raise AnalysisError("need at least one trial")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


def _merge_counts(trials: int, parts: List[ChunkCounts]) -> MonteCarloResult:
    """Fold per-chunk counts (merged in chunk order) into one result."""
    result = MonteCarloResult(trials=trials)
    for part in parts:
        result.imo += part.imo
        result.double_reception += part.double_reception
        result.inconsistent += part.inconsistent
        result.no_fault_trials += part.no_fault_trials
        result.flips_total += part.flips_total
        if part.backend_stats:
            merged = result.backend_stats or {}
            for key, value in part.backend_stats.items():
                merged[key] = merged.get(key, 0) + value
            result.backend_stats = merged
    return result


def monte_carlo_tail(
    protocol: str = "can",
    n_nodes: int = 3,
    ber_star: float = 0.05,
    trials: int = 500,
    window: int = 2,
    m: int = 5,
    seed: SeedLike = None,
    jobs: Optional[int] = 1,
    chunk_trials: Optional[int] = None,
    backend: str = "engine",
) -> MonteCarloResult:
    """Sample tail-window error patterns and classify them by simulation.

    The fault universe matches
    :func:`repro.analysis.enumeration.enumerate_tail_patterns`, so the
    estimate converges to that module's conditional exact probability
    (restricted to the window, i.e. without the clean-elsewhere factor).

    Trials are split into fixed-size chunks, each with its own spawned
    child seed, and fanned out over ``jobs`` workers; the same chunking
    runs inline at ``jobs=1``, so the counts are identical either way.
    Each chunk draws all its placements as one seeded ``(trials,
    sites)`` numpy matrix whose row-major fill consumes the child's
    PCG64 stream exactly as the per-trial draws it replaced, so the
    sampled placements are bit-identical to the scalar draw order and
    ``backend="batch"`` (vectorised tail replay) produces the exact
    same counts as the engine for the same seed.

    ``chunk_trials=None`` (the default) resolves an adaptive chunk size
    from the node count — :data:`CHUNK_TRIALS` at the canonical three
    nodes, proportionally smaller for larger universes.  The resolution
    never looks at ``backend`` or ``jobs``, and the resolved value is
    recorded in ``result.chunk_trials``: the partition is part of the
    experiment identity.
    """
    if n_nodes < 2:
        raise AnalysisError("need at least two nodes")
    if backend not in ("engine", "batch"):
        raise AnalysisError("unknown backend %r (use 'engine' or 'batch')" % backend)
    probe = make_controller(protocol, "probe", m=m)
    eof_length = probe.config.eof_length
    if window > eof_length:
        raise AnalysisError("window exceeds the EOF length")
    node_names = tuple(["tx"] + ["r%d" % i for i in range(1, n_nodes)])
    sites = tuple(
        (name, eof_length - window + offset)
        for name in node_names
        for offset in range(window)
    )
    if chunk_trials is None:
        chunk_trials = _adaptive_chunk_trials(n_nodes)
    sizes = chunk_sizes(trials, chunk_trials)
    children = spawn_seeds(seed, len(sizes))
    tasks = [
        MonteCarloTailChunk(
            protocol=protocol,
            m=m,
            node_names=node_names,
            sites=sites,
            ber_star=ber_star,
            trials=size,
            seed=child,
            backend=backend,
        )
        for size, child in zip(sizes, children)
    ]
    result = _merge_counts(trials, run_tasks(tasks, jobs))
    result.chunk_trials = chunk_trials
    return result


def monte_carlo_full(
    protocol: str = "can",
    n_nodes: int = 3,
    ber_star: float = 2e-3,
    trials: int = 200,
    m: int = 5,
    payload: bytes = b"",
    seed: SeedLike = None,
    jobs: Optional[int] = 1,
    chunk_trials: Optional[int] = None,
) -> MonteCarloResult:
    """Unrestricted per-bit view errors over whole single-frame runs.

    Uses :class:`repro.faults.bit_errors.RandomViewErrorInjector`
    directly, so errors can hit arbitration, data, CRC, flags and
    delimiters — everything the protocol machinery covers.  Chunked and
    seeded like :func:`monte_carlo_tail` (including the adaptive
    ``chunk_trials=None`` default): ``jobs`` never changes the counts,
    only the wall-clock time.
    """
    node_names = tuple(["tx"] + ["r%d" % i for i in range(1, n_nodes)])
    if chunk_trials is None:
        chunk_trials = _adaptive_chunk_trials(n_nodes)
    sizes = chunk_sizes(trials, chunk_trials)
    children = spawn_seeds(seed, len(sizes))
    tasks = [
        MonteCarloFullChunk(
            protocol=protocol,
            m=m,
            node_names=node_names,
            ber_star=ber_star,
            trials=size,
            payload=payload,
            max_bits=60000,
            seed=child,
        )
        for size, child in zip(sizes, children)
    ]
    result = _merge_counts(trials, run_tasks(tasks, jobs))
    result.chunk_trials = chunk_trials
    return result
