"""Parameter sweeps and design-choice ablations.

The paper evaluates one operating point (Table 1) and one tolerance
(m = 5).  These sweeps map the surrounding landscape:

* :func:`imo_rate_sweep` — the IMOnew/IMO* rates of equations 4/5 as a
  series over ``ber``, node count or frame length;
* :func:`omission_degree_revision` — the CAN6 → CAN6' revision made
  quantitative: the expected number of inconsistent omissions within a
  reference interval, with (j') and without (j) the new scenarios;
* :func:`m_ablation` — the paper's choice of m = 5, ablated: per m,
  the overhead bits, the channel-error budget the design tolerates,
  and whether the receiver-desynchronisation channel of finding F1 is
  closed (it needs m >= 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.overhead import (
    best_case_overhead_bits,
    worst_case_overhead_bits,
)
from repro.analysis.probability import (
    p_new_scenario_per_frame,
    p_old_scenario_per_frame,
)
from repro.analysis.rates import incidents_per_hour
from repro.analysis.verification import header_sites, verify_consistency
from repro.errors import AnalysisError
from repro.parallel.pool import run_tasks
from repro.parallel.tasks import AblationRowTask
from repro.workload.profiles import PAPER_PROFILE, NetworkProfile


@dataclass(frozen=True)
class SweepPoint:
    """One point of an IMO-rate sweep."""

    ber: float
    n_nodes: int
    frame_bits: int
    imo_new_per_hour: float
    imo_star_per_hour: float

    @property
    def ratio(self) -> float:
        """How strongly the new scenario dominates at this point."""
        if self.imo_star_per_hour == 0.0:
            return float("inf")
        return self.imo_new_per_hour / self.imo_star_per_hour


def imo_rate_sweep(
    ber_values: Sequence[float] = (1e-6, 1e-5, 1e-4),
    node_counts: Sequence[int] = (32,),
    frame_lengths: Sequence[int] = (110,),
    profile: NetworkProfile = PAPER_PROFILE,
) -> List[SweepPoint]:
    """Sweep the analytical IMO rates over the model parameters.

    The traffic volume (frames/hour) follows the profile scaled to the
    swept frame length, matching the paper's methodology.
    """
    points = []
    for ber in ber_values:
        for n_nodes in node_counts:
            for frame_bits in frame_lengths:
                scaled = profile.scaled(n_nodes=n_nodes, frame_bits=frame_bits)
                points.append(
                    SweepPoint(
                        ber=ber,
                        n_nodes=n_nodes,
                        frame_bits=frame_bits,
                        imo_new_per_hour=incidents_per_hour(
                            p_new_scenario_per_frame(ber, n_nodes, frame_bits),
                            scaled,
                        ),
                        imo_star_per_hour=incidents_per_hour(
                            p_old_scenario_per_frame(ber, n_nodes, frame_bits),
                            scaled,
                        ),
                    )
                )
    return points


@dataclass(frozen=True)
class OmissionDegreeRevision:
    """CAN6 vs CAN6': expected omission counts in a reference interval."""

    ber: float
    t_rd_hours: float
    j_old_scenarios: float
    j_prime_with_new: float

    @property
    def inflation(self) -> float:
        """j' / j: how much the new scenarios inflate the degree."""
        if self.j_old_scenarios == 0.0:
            return float("inf")
        return self.j_prime_with_new / self.j_old_scenarios


def omission_degree_revision(
    ber: float,
    t_rd_hours: float = 1.0,
    profile: NetworkProfile = PAPER_PROFILE,
) -> OmissionDegreeRevision:
    """Quantify the paper's CAN6 -> CAN6' property revision.

    ``j`` bounds the expected inconsistent omissions per reference
    interval under the previously known scenarios (equation 5); ``j'``
    adds the new scenarios (equation 4).  The paper states only that
    "j' is larger than the previous j"; this computes by how much.
    """
    if t_rd_hours <= 0:
        raise AnalysisError("the reference interval must be positive")
    old_rate = incidents_per_hour(
        p_old_scenario_per_frame(ber, profile.n_nodes, profile.frame_bits), profile
    )
    new_rate = incidents_per_hour(
        p_new_scenario_per_frame(ber, profile.n_nodes, profile.frame_bits), profile
    )
    return OmissionDegreeRevision(
        ber=ber,
        t_rd_hours=t_rd_hours,
        j_old_scenarios=old_rate * t_rd_hours,
        j_prime_with_new=(old_rate + new_rate) * t_rd_hours,
    )


@dataclass(frozen=True)
class MAblationRow:
    """One row of the m-choice ablation."""

    m: int
    best_case_bits: int
    worst_case_bits: int
    tail_errors_verified: int
    tail_consistent: bool
    f1_channel_closed: Optional[bool]
    #: Batch-backend provenance counters summed over the row's
    #: verifications (None on the engine backend).
    backend_stats: Optional[dict] = None


def ablation_row(
    m: int,
    tail_flips: int = 1,
    check_f1: bool = True,
    n_nodes: int = 3,
    backend: str = "engine",
) -> MAblationRow:
    """Compute one m-value row of the ablation (worker-side entry)."""
    node_names = ["tx"] + ["r%d" % i for i in range(1, n_nodes)]
    tail = verify_consistency(
        "majorcan", m=m, n_nodes=n_nodes, max_flips=tail_flips, backend=backend
    )
    f1_closed: Optional[bool] = None
    f1 = None
    if check_f1:
        f1 = verify_consistency(
            "majorcan",
            m=m,
            n_nodes=n_nodes,
            max_flips=1,
            extra_sites=header_sites(node_names, data_bits=0),
            include_window=True,
            backend=backend,
        )
        f1_closed = f1.holds
    stats: Optional[dict] = None
    if backend == "batch":
        stats = {}
        parts = [tail.backend_stats]
        if f1 is not None:
            parts.append(f1.backend_stats)
        for part in parts:
            for key, value in (part or {}).items():
                stats[key] = stats.get(key, 0) + value
    return MAblationRow(
        m=m,
        best_case_bits=best_case_overhead_bits(m),
        worst_case_bits=worst_case_overhead_bits(m),
        tail_errors_verified=tail.runs,
        tail_consistent=tail.holds,
        f1_channel_closed=f1_closed,
        backend_stats=stats,
    )


def m_ablation(
    m_values: Sequence[int] = (3, 4, 5, 6, 7),
    tail_flips: int = 1,
    check_f1: bool = True,
    n_nodes: int = 3,
    jobs: Optional[int] = 1,
    backend: str = "engine",
) -> List[MAblationRow]:
    """Ablate the choice of m (the paper proposes m = 5).

    For each m: the frame overhead, a bounded verification over the
    paper's tail-error universe with ``tail_flips`` simultaneous
    errors, and whether the finding-F1 desynchronisation channel is
    closed (requires the node's 6-bit flag, starting six bits after
    the ACK slot, to land in the *first* sub-field: m >= 6).

    The per-m rows are independent, so ``jobs > 1`` computes them on
    the worker pool (one task per m; each task's verification runs
    serially to avoid nested pools).  Row order follows ``m_values``.
    """
    tasks = [
        AblationRowTask(
            m=m,
            tail_flips=tail_flips,
            check_f1=check_f1,
            n_nodes=n_nodes,
            backend=backend,
        )
        for m in m_values
    ]
    return run_tasks(tasks, jobs)
