"""Bounded exhaustive verification of the agreement machinery.

The paper's future work plans "model checking on the VHDL description
to achieve a formal verification".  This module provides the
simulation analogue: *bounded* exhaustive exploration of every
placement of up to ``max_flips`` view errors over a configurable site
universe (frame-tail bits, the whole EOF, the sampling/extended-flag
window, and optionally the frame header), classifying each run with
the bit-level simulator and reporting all counterexamples to
consistency.

Two standing results of the reproduction come out of this harness:

* with the site universe restricted to the paper's error model (the
  EOF region and the agreement window), MajorCAN_m has **no**
  counterexample with up to m flips at the explored network sizes;
* extending the universe to the frame header exposes finding F1 (the
  DLC desynchronisation channel) automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.can.fields import (
    ACK_DELIM,
    ACK_SLOT,
    CRC_DELIM,
    DATA,
    DLC,
    EOF,
    SAMPLING,
)
from repro.can.frame import data_frame
from repro.errors import AnalysisError
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.faults.scenarios import make_controller, run_single_frame_scenario
from repro.parallel.pool import effective_jobs, run_tasks
from repro.parallel.seeds import adaptive_chunk
from repro.parallel.tasks import VerificationChunk

#: A fault site: (node name, field label, index within the field).
Site = Tuple[str, str, int]

#: Baseline flip placements per task chunk on the parallel path, tuned
#: for the canonical three-node engine sweep.  The placement
#: enumeration order is fixed, so chunking only partitions it; results
#: merged in chunk order are identical to the serial sweep.  The
#: default ``chunk_placements=None`` adapts this baseline to the node
#: count and — because, unlike the Monte-Carlo spawn tree, the
#: partition cannot change verification results — to the backend: the
#: vectorised batch backend classifies a placement roughly 16x faster,
#: so its chunks grow by that factor to keep per-chunk wall-clock
#: comparable.
CHUNK_PLACEMENTS = 64

#: Per-placement cost discount of the batch backend relative to the
#: engine, used by the adaptive chunk resolution.
_BATCH_DISCOUNT = 16.0

#: Placements per array pass on the serial batch backend — large slabs
#: amortise the per-pass setup without changing the enumeration order.
_BATCH_SLAB = 2048


@dataclass(frozen=True)
class Counterexample:
    """A flip placement that broke a consistency property."""

    sites: Tuple[Site, ...]
    deliveries: Tuple[Tuple[str, int], ...]
    attempts: int
    kind: str  # "imo" | "double" | "inconsistent"

    def __str__(self) -> str:
        flips = ", ".join("%s@%s[%d]" % site for site in self.sites)
        return "%s from {%s} -> %s" % (self.kind, flips, dict(self.deliveries))


@dataclass
class VerificationResult:
    """Outcome of a bounded exhaustive exploration."""

    protocol: str
    m: int
    n_nodes: int
    max_flips: int
    site_count: int
    runs: int = 0
    counterexamples: List[Counterexample] = field(default_factory=list)
    #: Batch-backend provenance counters (None on the engine backend):
    #: placements classified by the array pass / scalar micro-sim /
    #: header class cache / engine fallback.
    backend_stats: Optional[dict] = None
    #: Resolved placements-per-chunk of this run (recorded even when
    #: the sweep ran inline): the partition is part of the experiment
    #: identity.
    chunk_placements: Optional[int] = None

    @property
    def holds(self) -> bool:
        """Whether consistency held for every explored placement."""
        return not self.counterexamples

    def summary(self) -> str:
        verdict = (
            "no counterexample"
            if self.holds
            else "%d counterexamples" % len(self.counterexamples)
        )
        return (
            "%s (m=%d, N=%d): %d placements over %d sites, <=%d flips: %s"
            % (
                self.protocol,
                self.m,
                self.n_nodes,
                self.runs,
                self.site_count,
                self.max_flips,
                verdict,
            )
        )


def tail_sites(
    node_names: Sequence[str],
    eof_length: int,
    window_start: Optional[int] = None,
    window_end: Optional[int] = None,
    include_pre_eof: bool = True,
) -> List[Site]:
    """The paper's error universe: the frame tail and agreement window.

    Covers the CRC/ACK delimiters and the ACK slot (errors whose flags
    start at the first EOF bit), every EOF bit, and — when a sampling
    window is given — every window bit (reached through the SAMPLING
    position that MajorCAN nodes announce while quiet).
    """
    sites: List[Site] = []
    for name in node_names:
        if include_pre_eof:
            sites.append((name, CRC_DELIM, 0))
            sites.append((name, ACK_SLOT, 0))
            sites.append((name, ACK_DELIM, 0))
        for index in range(eof_length):
            sites.append((name, EOF, index))
        if window_start is not None and window_end is not None:
            for position in range(window_start, window_end + 1):
                sites.append((name, SAMPLING, position))
    return sites


def header_sites(node_names: Sequence[str], data_bits: int = 8) -> List[Site]:
    """Frame-header sites that can desynchronise a receiver (finding F1)."""
    sites: List[Site] = []
    for name in node_names:
        for index in range(4):
            sites.append((name, DLC, index))
        for index in range(data_bits):
            sites.append((name, DATA, index))
    return sites


def verify_consistency(
    protocol: str = "majorcan",
    m: int = 5,
    n_nodes: int = 3,
    max_flips: int = 2,
    extra_sites: Iterable[Site] = (),
    include_window: bool = True,
    stop_at_first: bool = False,
    payload: bytes = b"\x55",
    jobs: Optional[int] = 1,
    chunk_placements: Optional[int] = None,
    backend: str = "engine",
) -> VerificationResult:
    """Exhaustively explore every ≤ ``max_flips`` placement of view
    errors over the chosen site universe.

    A placement is a *counterexample* when the resulting execution is
    inconsistent: some live node delivers the frame a different number
    of times than another (inconsistent omission), or any node delivers
    it twice (double reception).

    ``jobs > 1`` partitions the (fixed, deterministic) placement
    enumeration into chunks and explores them on a worker pool; the
    counterexample list and run count are identical to the serial
    sweep.  ``stop_at_first`` keeps the serial early-exit semantics and
    therefore always runs inline.

    ``backend="batch"`` classifies placements with the vectorised
    replay of :mod:`repro.analysis.batchreplay` — array passes for tail
    placements, the stuff-aware header class cache for single header
    flips (the ``header_sites`` F1 universe), and a transparent engine
    fallback for anything neither models, with the split recorded in
    ``result.backend_stats``; ``"engine"`` keeps one engine run per
    placement.  Both backends produce identical results.

    ``chunk_placements=None`` (the default) resolves an adaptive chunk
    size from the node count and backend — :data:`CHUNK_PLACEMENTS` for
    the canonical three-node engine sweep, larger for the batch backend
    whose per-placement cost is far lower.  The resolved value is
    recorded in ``result.chunk_placements``.
    """
    if n_nodes < 2:
        raise AnalysisError("need a transmitter and at least one receiver")
    if max_flips < 1:
        raise AnalysisError("max_flips must be at least 1")
    if backend not in ("engine", "batch"):
        raise AnalysisError("unknown backend %r (use 'engine' or 'batch')" % backend)
    node_names = ["tx"] + ["r%d" % i for i in range(1, n_nodes)]
    probe = make_controller(protocol, "probe", m=m)
    window_start = getattr(probe, "window_start", None) if include_window else None
    window_end = getattr(probe, "window_end", None) if include_window else None
    sites = tail_sites(
        node_names,
        probe.config.eof_length,
        window_start=window_start,
        window_end=window_end,
    )
    sites.extend(extra_sites)
    if chunk_placements is None:
        cost_units = n_nodes / 3.0
        if backend == "batch":
            cost_units /= _BATCH_DISCOUNT
        chunk_placements = adaptive_chunk(CHUNK_PLACEMENTS, cost_units)
    result = VerificationResult(
        protocol=protocol,
        m=m,
        n_nodes=n_nodes,
        max_flips=max_flips,
        site_count=len(sites),
        chunk_placements=chunk_placements,
    )
    combos = itertools.chain.from_iterable(
        itertools.combinations(sites, size) for size in range(1, max_flips + 1)
    )
    if stop_at_first or effective_jobs(jobs) == 1:
        if backend == "batch":
            from repro.analysis.batchreplay import BatchReplayEvaluator

            evaluator = BatchReplayEvaluator(protocol, m, node_names, payload=payload)
            result.backend_stats = evaluator.stats
            for chunk in _chunked(combos, _BATCH_SLAB):
                outcomes = evaluator.evaluate(chunk)
                for combo, outcome in zip(chunk, outcomes):
                    result.runs += 1
                    hit = evaluator.counterexample(combo, outcome)
                    if hit is not None:
                        result.counterexamples.append(Counterexample(*hit))
                        if stop_at_first:
                            return result
            return result
        for combo in combos:
            result.runs += 1
            hit = classify_placement(protocol, m, node_names, combo, payload)
            if hit is not None:
                result.counterexamples.append(Counterexample(*hit))
                if stop_at_first:
                    return result
        return result
    tasks = (
        VerificationChunk(
            protocol=protocol,
            m=m,
            node_names=tuple(node_names),
            combos=tuple(chunk),
            payload=payload,
            backend=backend,
        )
        for chunk in _chunked(combos, chunk_placements)
    )
    for part in run_tasks(tasks, jobs):
        result.runs += part.runs
        result.counterexamples.extend(Counterexample(*hit) for hit in part.hits)
        if part.stats:
            merged = result.backend_stats or {}
            for key, value in part.stats.items():
                merged[key] = merged.get(key, 0) + value
            result.backend_stats = merged
    return result


def _chunked(combos: Iterator, size: int) -> Iterator[List]:
    while True:
        chunk = list(itertools.islice(combos, size))
        if not chunk:
            return
        yield chunk


def classify_placement(
    protocol: str,
    m: int,
    node_names: Sequence[str],
    combo: Sequence[Site],
    payload: bytes,
) -> Optional[Tuple]:
    """Simulate one flip placement; return Counterexample args or None.

    Returns plain picklable data (not a :class:`Counterexample`) so the
    worker side of :class:`repro.parallel.tasks.VerificationChunk` can
    ship results across the process boundary cheaply.
    """
    nodes = [make_controller(protocol, name, m=m) for name in node_names]
    faults = [
        ViewFault(name, Trigger(field=field_name, index=index), force=None)
        for name, field_name, index in combo
    ]
    outcome = run_single_frame_scenario(
        "verify",
        nodes,
        ScriptedInjector(view_faults=faults),
        frame=data_frame(0x123, payload, message_id="m"),
        record_bits=False,
        max_bits=60000,
    )
    if outcome.inconsistent_omission:
        kind = "imo"
    elif outcome.double_reception:
        kind = "double"
    elif not outcome.consistent:
        kind = "inconsistent"
    else:
        return None
    return (
        tuple(combo),
        tuple(sorted(outcome.deliveries.items())),
        outcome.attempts,
        kind,
    )
