"""Exact validation of the probability model by pattern enumeration.

Equation 4 counts specific error patterns at the frame tail.  For a
small network, this module *enumerates every possible pattern of view
errors over the last ``window`` EOF bits*, runs the bit-level
simulator on each pattern, classifies the outcome (consistent,
inconsistent omission, double reception...), and accumulates exact
per-frame probabilities by weighting each pattern with its ``ber*``
probability (times the probability that the rest of the frame is
error-free for every node).

This serves two purposes:

* it validates that the closed-form equation 4 captures the dominant
  IMO patterns — the enumerated IMO probability is bounded below by
  equation 4's prediction and converges to it as ``ber* -> 0``;
* it catalogues *all* tail patterns that break consistency at a given
  window size, which the closed form does not enumerate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.can.controller import CanController
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.errors import AnalysisError
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.faults.scenarios import make_controller, run_single_frame_scenario

#: A pattern assigns flipped view bits as (node_index, eof_index) pairs.
Pattern = Tuple[Tuple[int, int], ...]


@dataclass
class PatternOutcome:
    """Simulation verdict for one tail error pattern."""

    pattern: Pattern
    consistent: bool
    inconsistent_omission: bool
    double_reception: bool
    attempts: int


@dataclass
class EnumerationResult:
    """Exact tail-window probabilities for one protocol and network."""

    protocol: str
    n_nodes: int
    window: int
    tau_data: int
    ber_star: float
    outcomes: List[PatternOutcome] = field(default_factory=list)
    #: Batch-backend provenance counters (None on the engine backend).
    backend_stats: Optional[dict] = None

    def _probability_of(self, flips: int) -> float:
        """Probability of a specific pattern with ``flips`` flipped bits.

        Every other (node, bit) view in the whole frame must be clean:
        the tail window has ``N * window`` candidate bits, the rest of
        the frame ``N * (tau - window)``.
        """
        b = self.ber_star
        tail_bits = self.n_nodes * self.window
        rest_bits = self.n_nodes * (self.tau_data - self.window)
        return (b**flips) * ((1 - b) ** (tail_bits - flips)) * ((1 - b) ** rest_bits)

    def probability(self, selector: Callable[[PatternOutcome], bool]) -> float:
        """Exact per-frame probability of the outcomes matching ``selector``."""
        return sum(
            self._probability_of(len(outcome.pattern))
            for outcome in self.outcomes
            if selector(outcome)
        )

    @property
    def p_inconsistent_omission(self) -> float:
        """Exact per-frame IMO probability within the tail window."""
        return self.probability(lambda o: o.inconsistent_omission)

    @property
    def p_double_reception(self) -> float:
        return self.probability(lambda o: o.double_reception)

    @property
    def p_inconsistent(self) -> float:
        return self.probability(lambda o: not o.consistent)

    def imo_patterns(self) -> List[Pattern]:
        """All tail patterns that produce an inconsistent omission."""
        return [o.pattern for o in self.outcomes if o.inconsistent_omission]


def enumerate_tail_patterns(
    protocol: str = "can",
    n_nodes: int = 3,
    window: int = 2,
    ber_star: float = 1e-6,
    tau_data: int = 110,
    m: int = 5,
    max_flips: int = None,
    backend: str = "engine",
    payload: bytes = b"\x55",
) -> EnumerationResult:
    """Enumerate all view-error patterns over the last ``window`` EOF bits.

    Parameters
    ----------
    protocol:
        ``"can"``, ``"minorcan"`` or ``"majorcan"``.
    n_nodes:
        Network size (node 0 transmits).  Runtime is
        ``2 ** (n_nodes * window)`` simulations, so keep it small.
    window:
        Number of trailing EOF bits in the fault universe.
    ber_star:
        Per-node per-bit error probability used for the weights.
    max_flips:
        Optionally skip patterns with more simultaneous errors (their
        weight is ``O(ber*^flips)`` and rarely matters).
    backend:
        ``"engine"`` simulates every pattern; ``"batch"`` classifies
        them with the vectorised tail replay of
        :mod:`repro.analysis.batchreplay` (identical outcomes).
    payload:
        Data bytes of the simulated frame.  The tail-window outcomes do
        not depend on it, but the design-space sweeps pass each cell's
        payload so the simulated frame matches the ``tau_data`` the
        weights are computed against.
    """
    if backend not in ("engine", "batch"):
        raise AnalysisError("unknown backend %r (use 'engine' or 'batch')" % backend)
    if n_nodes < 2:
        raise AnalysisError("need at least a transmitter and a receiver")
    probe = make_controller(protocol, "probe", m=m)
    eof_length = probe.config.eof_length
    if window > eof_length:
        raise AnalysisError(
            "window of %d bits exceeds the %d-bit EOF" % (window, eof_length)
        )
    node_names = ["tx"] + ["r%d" % i for i in range(1, n_nodes)]
    sites = [
        (node_index, eof_length - window + offset)
        for node_index in range(n_nodes)
        for offset in range(window)
    ]
    result = EnumerationResult(
        protocol=protocol,
        n_nodes=n_nodes,
        window=window,
        tau_data=tau_data,
        ber_star=ber_star,
    )
    patterns: List[Pattern] = []
    for size in range(len(sites) + 1):
        if max_flips is not None and size > max_flips:
            break
        patterns.extend(itertools.combinations(sites, size))
    if backend == "batch":
        from repro.analysis.batchreplay import BatchReplayEvaluator

        evaluator = BatchReplayEvaluator(protocol, m, node_names, payload=payload)
        combos = [
            tuple(
                (node_names[node_index], EOF, eof_index)
                for node_index, eof_index in pattern
            )
            for pattern in patterns
        ]
        for pattern, outcome in zip(patterns, evaluator.evaluate(combos)):
            result.outcomes.append(
                PatternOutcome(
                    pattern=tuple(pattern),
                    consistent=outcome.consistent,
                    inconsistent_omission=outcome.inconsistent_omission,
                    double_reception=outcome.double_reception,
                    attempts=outcome.attempts,
                )
            )
        result.backend_stats = dict(evaluator.stats)
        return result
    for pattern in patterns:
        result.outcomes.append(
            _simulate_pattern(protocol, m, node_names, pattern, payload)
        )
    return result


def _simulate_pattern(
    protocol: str,
    m: int,
    node_names: Sequence[str],
    combo: Sequence[Tuple[int, int]],
    payload: bytes = b"\x55",
) -> PatternOutcome:
    nodes: List[CanController] = [
        make_controller(protocol, name, m=m) for name in node_names
    ]
    faults = [
        ViewFault(
            node_names[node_index],
            Trigger(field=EOF, index=eof_index),
            force=None,  # flip: an error inverts the node's view
        )
        for node_index, eof_index in combo
    ]
    scenario = run_single_frame_scenario(
        "pattern",
        nodes,
        ScriptedInjector(view_faults=faults),
        frame=data_frame(0x123, payload, message_id="m"),
        record_bits=False,
    )
    return PatternOutcome(
        pattern=tuple(combo),
        consistent=scenario.consistent,
        inconsistent_omission=scenario.inconsistent_omission,
        double_reception=scenario.double_reception,
        attempts=scenario.attempts,
    )


def equation4_tail_prediction(ber_star: float, n_nodes: int, tau_data: int) -> float:
    """Equation 4 recomputed from ``ber*`` directly (helper for
    comparing against :class:`EnumerationResult` values)."""
    import math

    b = ber_star
    total = 0.0
    affected = ((1 - b) ** (tau_data - 2)) * b
    clean = (1 - b) ** (tau_data - 1)
    for i in range(1, n_nodes - 1):
        total += math.comb(n_nodes - 1, i) * affected**i * clean ** (n_nodes - 1 - i)
    return total * ((1 - b) ** (tau_data - 1)) * b
