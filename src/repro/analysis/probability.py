"""The analytical probability model of Section 4 (equations 4 and 5).

Both expressions share the same structure: at least one receiver (the
X set) is affected by an error in the last-but-one frame bit while the
remaining receivers (the Y set, at least one node) are unaffected.
They differ in the final factor:

* **Equation 4** (the *new* scenario, Fig. 3a): the transmitter
  suffers an error in the last bit that masks X's error flag —
  factor ``(1 - ber*)^(tau-1) * ber*``;
* **Equation 5** (the *old* scenario, Fig. 1c, recast in the paper's
  ber* model): the transmitter stays error-free but crashes inside the
  vulnerability window before retransmitting — factor
  ``(1 - ber*)^(tau-2) * (1 - exp(-lambda * dt))``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import AnalysisError
from repro.faults.crash import PAPER_DELTA_T_HOURS, PAPER_LAMBDA_PER_HOUR, crash_probability
from repro.faults.models import ber_star


def _validate(ber: float, n_nodes: int, tau_data: int) -> None:
    if not 0.0 <= ber <= 1.0:
        raise AnalysisError("ber must be a probability, got %r" % ber)
    if n_nodes < 3:
        raise AnalysisError(
            "the scenario needs a transmitter plus at least two receivers "
            "(got N=%d)" % n_nodes
        )
    if tau_data < 3:
        raise AnalysisError("frames of %d bits are too short" % tau_data)


def _receiver_split_sum(b: float, n_nodes: int, tau_data: int) -> float:
    """The common receiver-partition factor of equations 4 and 5.

    Sums over the size ``i`` of the affected set X (1 <= i <= N-2): the
    ``i`` affected receivers each suffer exactly one error in the
    last-but-one bit and none elsewhere; the ``N-1-i`` unaffected
    receivers see every bit of the frame cleanly.
    """
    total = 0.0
    affected_term = ((1.0 - b) ** (tau_data - 2)) * b
    clean_term = (1.0 - b) ** (tau_data - 1)
    for i in range(1, n_nodes - 1):
        total += (
            math.comb(n_nodes - 1, i)
            * (affected_term**i)
            * (clean_term ** (n_nodes - 1 - i))
        )
    return total


def p_new_scenario_per_frame(ber: float, n_nodes: int, tau_data: int) -> float:
    """Equation 4: probability per frame of the Fig. 3a scenario.

    The transmitter sees the whole frame cleanly except for an error in
    the last bit, which hides the error flag of the X set from it.
    """
    _validate(ber, n_nodes, tau_data)
    b = ber_star(ber, n_nodes)
    transmitter_term = ((1.0 - b) ** (tau_data - 1)) * b
    return _receiver_split_sum(b, n_nodes, tau_data) * transmitter_term


def p_old_scenario_per_frame(
    ber: float,
    n_nodes: int,
    tau_data: int,
    lambda_per_hour: float = PAPER_LAMBDA_PER_HOUR,
    delta_t_hours: Optional[float] = None,
) -> float:
    """Equation 5: probability per frame of the Fig. 1c scenario,
    re-derived in the paper's ber* model (the IMO* column of Table 1).

    The transmitter is error-free through the frame but crashes within
    the ``delta_t`` vulnerability window before it can retransmit.
    """
    _validate(ber, n_nodes, tau_data)
    if delta_t_hours is None:
        delta_t_hours = PAPER_DELTA_T_HOURS
    b = ber_star(ber, n_nodes)
    transmitter_term = ((1.0 - b) ** (tau_data - 2)) * crash_probability(
        lambda_per_hour, delta_t_hours
    )
    return _receiver_split_sum(b, n_nodes, tau_data) * transmitter_term


def dominant_term_ratio(ber: float, n_nodes: int, tau_data: int) -> float:
    """Ratio of the i=1 term to the full sum of the receiver factor.

    Quantifies how strongly the single-affected-receiver case dominates
    equation 4 at realistic error rates (it is >0.999 for the paper's
    parameters), justifying back-of-envelope estimates.
    """
    b = ber_star(ber, n_nodes)
    full = _receiver_split_sum(b, n_nodes, tau_data)
    if full == 0.0:
        return 0.0
    first = (
        math.comb(n_nodes - 1, 1)
        * ((1.0 - b) ** (tau_data - 2))
        * b
        * ((1.0 - b) ** (tau_data - 1)) ** (n_nodes - 2)
    )
    return first / full
