"""Communication overhead of MajorCAN_m versus standard CAN (Section 5).

Analytical claims of the paper:

* **best case** (no errors during EOF): the EOF grows from 7 to 2m
  bits, so the overhead is ``2m - 7`` bits (3 bits for m = 5);
* **worst case** (errors during the last m bits of EOF): the frame is
  extended ``2m - 2`` bits more, a total of ``4m - 9`` bits (11 bits
  for m = 5).

The worst case is realised when a node detects an error in the first
bit of the second sub-field (EOF bit m+1): MajorCAN then occupies the
bus until EOF-relative bit ``3m + 5`` plus a ``2m + 1``-bit delimiter,
whereas standard CAN at the same position would emit a 6-bit flag plus
an 8-bit delimiter (and then pay a *whole retransmitted frame*, which
is exactly the cost MajorCAN avoids and the paper's accounting
excludes).

:func:`measured_overhead` validates both formulas by simulation: it
measures real bus occupancy of frame slots with the bit-level
controllers, which is the reproduction's executable check of the
Section 5/6 arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.can.bits import DOMINANT
from repro.can.controller import CanController
from repro.can.fields import EOF, INTERMISSION
from repro.can.frame import Frame, data_frame
from repro.core.majorcan import MajorCanController
from repro.errors import AnalysisError
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.simulation.engine import SimulationEngine


def best_case_overhead_bits(m: int) -> int:
    """Error-free MajorCAN_m overhead versus standard CAN: ``2m - 7``."""
    if m < 3:
        raise AnalysisError("MajorCAN needs m >= 3")
    return 2 * m - 7


def worst_case_overhead_bits(m: int) -> int:
    """Worst-case MajorCAN_m overhead versus standard CAN: ``4m - 9``."""
    if m < 3:
        raise AnalysisError("MajorCAN needs m >= 3")
    return 4 * m - 9


def worst_case_extension_bits(m: int) -> int:
    """Extra extension over the best case in the worst case: ``2m - 2``."""
    return worst_case_overhead_bits(m) - best_case_overhead_bits(m)


@dataclass
class MeasuredOverhead:
    """Frame-slot lengths measured on the simulated bus."""

    can_clean_slot: int
    majorcan_clean_slot: int
    can_error_slot: int
    majorcan_error_slot: int

    @property
    def best_case(self) -> int:
        """Measured error-free overhead (should equal ``2m - 7``)."""
        return self.majorcan_clean_slot - self.can_clean_slot

    @property
    def worst_case(self) -> int:
        """Measured worst-case overhead (should equal ``4m - 9``)."""
        return self.majorcan_error_slot - self.can_error_slot


def _slot_length(
    make_node,
    frame: Frame,
    error_eof_index: Optional[int] = None,
) -> int:
    """Bits from SOF to the start of the first intermission.

    ``error_eof_index`` optionally injects a dominant disturbance into
    the view of *every* node at that EOF bit, so all nodes flag
    simultaneously — the paper's single-error-frame accounting (a
    staggered reaction flag would add one bit).  For error slots the
    length deliberately stops at the intermission: a standard-CAN
    retransmission that follows is the cost MajorCAN saves, and the
    paper's overhead accounting excludes it.
    """
    transmitter = make_node("tx")
    receiver_a = make_node("ra")
    receiver_b = make_node("rb")
    faults = []
    if error_eof_index is not None:
        faults = [
            ViewFault(name, Trigger(field=EOF, index=error_eof_index), force=DOMINANT)
            for name in ("tx", "ra", "rb")
        ]
    engine = SimulationEngine(
        [transmitter, receiver_a, receiver_b],
        injector=ScriptedInjector(view_faults=faults),
    )
    transmitter.submit(frame)
    engine.run_until_idle(20000)
    starts = engine.trace.position_times("tx", INTERMISSION, 0)
    if not starts:
        raise AnalysisError("transmitter never reached the intermission")
    return starts[0]


def measured_overhead(m: int = 5, payload: bytes = b"\x55") -> MeasuredOverhead:
    """Measure the best- and worst-case overhead on the simulated bus.

    The worst case places the receiver's disturbance at EOF bit
    ``m + 1`` (MajorCAN: first bit of the second sub-field, extended
    flag; standard CAN at its corresponding relative position: one bit
    short of the last, a plain error frame).
    """
    if not 3 <= m <= 5:
        raise AnalysisError(
            "the measured worst case needs the disturbance position "
            "(EOF bit m+1) to exist inside standard CAN's 7-bit EOF, "
            "so m must be in [3, 5]; use the formulas for larger m"
        )
    frame = data_frame(0x123, payload, message_id="ov")
    can_clean = _slot_length(CanController, frame)
    major_clean = _slot_length(lambda name: MajorCanController(name, m=m), frame)
    can_error = _slot_length(CanController, frame, error_eof_index=m)
    major_error = _slot_length(
        lambda name: MajorCanController(name, m=m), frame, error_eof_index=m
    )
    return MeasuredOverhead(
        can_clean_slot=can_clean,
        majorcan_clean_slot=major_clean,
        can_error_slot=can_error,
        majorcan_error_slot=major_error,
    )


def higher_level_protocol_overhead_bits(frame_bits: int, receivers: int) -> dict:
    """Per-message overhead of the FTCS'98 protocols, in bits.

    All three require transmitting at least one extra CAN frame per
    message, which dwarfs MajorCAN's handful of bits:

    * EDCAN: every receiver retransmits the message once;
    * RELCAN: one CONFIRM frame after the data frame;
    * TOTCAN: one ACCEPT frame after the data frame.

    Control frames are conservatively counted at the minimal data-frame
    length (47 bits for a 0-byte payload, ignoring stuffing).
    """
    minimal_frame = 47
    return {
        "EDCAN": receivers * frame_bits,
        "RELCAN": minimal_frame,
        "TOTCAN": minimal_frame,
    }
