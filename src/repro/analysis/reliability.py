"""Mission-reliability view of the Table 1 rates.

Table 1 reports incident *rates*; dependability engineering asks the
complementary question: what is the probability that a mission of T
hours completes without a single inconsistent omission?  With
independent per-frame failures the incident process is Poisson, so::

    R(T) = exp(-rate * T)         MTTF = 1 / rate

This module derives mission reliability and mean time to failure for
each protocol/scenario family, quantifying the paper's qualitative
claim that standard CAN cannot meet the 1e-9/hour aerospace target
while MajorCAN_m removes the channel-error failure modes entirely
(leaving only residual channels such as > m errors per frame, or the
finding-F1 desynchronisation for m <= 5, both outside equation 4's
universe).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.probability import (
    p_new_scenario_per_frame,
    p_old_scenario_per_frame,
)
from repro.analysis.rates import incidents_per_hour
from repro.errors import AnalysisError
from repro.parallel.pool import run_tasks
from repro.parallel.tasks import ReliabilityTask
from repro.workload.profiles import PAPER_PROFILE, NetworkProfile


def mission_reliability(rate_per_hour: float, mission_hours: float) -> float:
    """Probability of surviving ``mission_hours`` without an incident."""
    if rate_per_hour < 0 or mission_hours < 0:
        raise AnalysisError("rates and durations must be non-negative")
    return math.exp(-rate_per_hour * mission_hours)


def mean_time_to_failure_hours(rate_per_hour: float) -> float:
    """Mean time to the first incident (inf for a zero rate)."""
    if rate_per_hour < 0:
        raise AnalysisError("rates must be non-negative")
    if rate_per_hour == 0.0:
        return float("inf")
    return 1.0 / rate_per_hour


@dataclass(frozen=True)
class ReliabilityRow:
    """Reliability of one protocol at one error rate."""

    protocol: str
    ber: float
    imo_rate_per_hour: float
    mttf_hours: float
    mission_survival: Dict[float, float]
    #: Batch-backend provenance counters for the enumerated rate
    #: (``None`` for the closed-form and engine backends).
    backend_stats: Optional[dict] = None


#: Display name -> simulator protocol key for the empirical backends.
_PROTOCOL_KEYS = (("CAN", "can"), ("MinorCAN", "minorcan"), ("MajorCAN", "majorcan"))

#: Tail-window universe behind the enumerated (empirical) rates: the
#: smallest network exhibiting the scenarios, over the last two EOF
#: bits — the same universe :func:`repro.analysis.enumeration`
#: validates equation 4 against.
_EMPIRICAL_N_NODES = 3
_EMPIRICAL_WINDOW = 2


def reliability_comparison(
    ber: float,
    mission_hours: Sequence[float] = (1.0, 1000.0, 100000.0),
    profile: NetworkProfile = PAPER_PROFILE,
    backend: Optional[str] = None,
    m: int = 5,
) -> List[ReliabilityRow]:
    """Compare the channel-error IMO reliability of the protocols.

    * standard CAN is exposed to both scenario families (eq. 4 + 5);
    * MinorCAN removes the old family (its last-bit rule fixes the
      Fig. 1 scenarios) but keeps the new one (eq. 4);
    * MajorCAN_m removes both (within the <= m channel-error model the
      paper analyses — the residual rate is 0 in this model).

    ``backend=None`` derives the rates from the closed-form equations.
    ``"engine"`` and ``"batch"`` instead *measure* the per-frame IMO
    probability by enumerating every tail-window error pattern on the
    bit-level simulator (per-bit engine runs vs. the vectorised replay
    of :mod:`repro.analysis.batchreplay` — identical rates), then scale
    it to the profile's frame rate.
    """
    if backend not in (None, "engine", "batch"):
        raise AnalysisError(
            "unknown backend %r (use None, 'engine' or 'batch')" % (backend,)
        )
    if backend is None:
        new_rate = incidents_per_hour(
            p_new_scenario_per_frame(ber, profile.n_nodes, profile.frame_bits),
            profile,
        )
        old_rate = incidents_per_hour(
            p_old_scenario_per_frame(ber, profile.n_nodes, profile.frame_bits),
            profile,
        )
        rates = [
            ("CAN", new_rate + old_rate, None),
            ("MinorCAN", new_rate, None),
            ("MajorCAN", 0.0, None),
        ]
    else:
        from repro.analysis.enumeration import enumerate_tail_patterns

        rates = []
        for display, key in _PROTOCOL_KEYS:
            enumerated = enumerate_tail_patterns(
                protocol=key,
                n_nodes=_EMPIRICAL_N_NODES,
                window=_EMPIRICAL_WINDOW,
                ber_star=ber,
                tau_data=profile.frame_bits,
                m=m,
                backend=backend,
            )
            rates.append(
                (
                    display,
                    incidents_per_hour(
                        enumerated.p_inconsistent_omission, profile
                    ),
                    enumerated.backend_stats,
                )
            )
    rows = []
    for protocol, rate, stats in rates:
        rows.append(
            ReliabilityRow(
                protocol=protocol,
                ber=ber,
                imo_rate_per_hour=rate,
                mttf_hours=mean_time_to_failure_hours(rate),
                mission_survival={
                    hours: mission_reliability(rate, hours)
                    for hours in mission_hours
                },
                backend_stats=stats,
            )
        )
    return rows


def reliability_sweep(
    ber_values: Sequence[float],
    mission_hours: Sequence[float] = (1.0, 1000.0, 100000.0),
    profile: NetworkProfile = PAPER_PROFILE,
    jobs: Optional[int] = 1,
    backend: Optional[str] = None,
    m: int = 5,
) -> Dict[float, List[ReliabilityRow]]:
    """:func:`reliability_comparison` over many bit-error rates.

    Each BER point is an independent task on the worker pool; the
    returned mapping preserves the order of ``ber_values`` and is
    identical for any ``jobs`` and either empirical backend.
    """
    tasks = [
        ReliabilityTask(
            ber=ber,
            mission_hours=tuple(mission_hours),
            profile=profile,
            backend=backend,
            m=m,
        )
        for ber in ber_values
    ]
    results = run_tasks(tasks, jobs)
    return dict(zip(ber_values, results))


def hours_to_reliability(rate_per_hour: float, target: float) -> float:
    """Longest mission that still meets a survival probability target.

    Solves ``exp(-rate * T) >= target`` for T.
    """
    if not 0.0 < target < 1.0:
        raise AnalysisError("target must be a probability in (0, 1)")
    if rate_per_hour <= 0.0:
        return float("inf")
    return -math.log(target) / rate_per_hour
