"""Vectorised batch replay of wire programs over tail error placements.

``verify_consistency`` and ``enumerate_tail_patterns`` classify one
error placement per full engine run: every placement re-simulates the
whole frame bit by bit even though all the fault sites live in the
frame *tail* (CRC delimiter, ACK slot, ACK delimiter, EOF, and the
MajorCAN sampling window) and the pre-tail portion of every attempt is
therefore identical and error-free.  This module exploits that: it
expands the cached :class:`repro.can.encoding.WireProgram` into flat
row-matrices, precompiles the fixed error-signalling shapes (error and
overload flags are always :data:`FLAG_LENGTH` dominant bits, delimiters
are fixed recessive runs per config — the same table treatment the
transmit program already gets), and replays **batches of placements in
lockstep array passes** over a tail-only micro-model of the controller
state machine.

The micro-model is *exact by construction* on the placements it
understands, and it refuses the rest:

* every supported fault site is announced at a fixed tail time, so the
  per-placement state is a handful of small integers per node;
* any situation outside the modelled envelope — an unexpected program
  layout, a fault field neither model announces, a dominant bit
  reaching an idle node outside the orchestrated retransmission
  restart, or a step-budget overflow — *bails out* and the placement is
  re-classified by the real engine (the oracle).

Header placements (the F1 desync universe: SOF through the CRC
sequence, where a flip can add or remove a stuff condition and shift a
receiver's parse of everything downstream) take a third path instead of
bailing: the stuff-aware :func:`repro.can.encoding.header_shape`
expansion materialises each site's post-flip restuffed parse, and
single-flip placements are classified through a per-process cache of
*reduced* engine runs — one run per equivalence class under receiver
symmetry (all non-faulted in-sync receivers are bit-identical, and the
wired-AND bus is invariant under duplicating identical drivers), with
mid-frame DATA/CRC receiver flips further sharing one class per parse
signature.  A full header universe costs a handful of two- or
three-node runs instead of one n-node engine run per site.

Multi-flip combos compose the same machinery instead of bailing out:
duplicate triggers on one position cancel by parity before anything
runs (they all fire at the same first announcement, and a flip of a
flip is the identity), faulted receivers are relabelled into a
canonical arrangement so one verdict serves every placement of the
same fault groups over any receivers, pure-tail multi-site placements
ride the micro-model (with a widened-budget scalar retry for cascade
overflows), and combos touching header sites classify through cached
*reduced* runs over transmitter + distinct fault carriers + one
witness.  The engine remains only for combos naming unknown nodes or
fields outside every model.

Two interchangeable backends implement the same transition table: a
numpy one evaluating ``(batch, node)`` arrays in single passes, and a
pure-python scalar one used automatically when numpy is absent (the
import is guarded; a notice is logged once per process).  The
differential suite pins both against the engine over the full tail-site
universe of every corpus frame.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.can.fields import (
    ACK_DELIM,
    ACK_SLOT,
    CRC,
    CRC_DELIM,
    DATA,
    EOF,
    FLAG_LENGTH,
    INTERMISSION_LENGTH,
    SAMPLING,
)
from repro.can.frame import Frame, data_frame
from repro.can.encoding import (
    HEADER_KIND_OVERRUN,
    HEADER_SITE_FIELDS,
    OP_ACK,
    OP_EOF,
    OP_MATCH,
    header_shape,
    wire_program,
)
from repro.faults.scenarios import make_controller

try:  # numpy is the optional ``repro[fast]`` extra
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the import-block tests
    np = None

HAVE_NUMPY = np is not None

logger = logging.getLogger(__name__)
_fallback_noticed = False

#: A fault site: (node name, field label, index within the field).
Site = Tuple[str, str, int]

# Micro-model states.  PROG states follow the compiled wire program
# (which never stalls, so the program index is the shared tail clock);
# the rest mirror the controller's error/overload epilogue states.
TX_PROG = 0
RX_PROG = 1
FLAG = 2
WAIT = 3
DELIM = 4
OVL_FLAG = 5
OVL_WAIT = 6
OVL_DELIM = 7
INTER = 8
IDLE = 9
MAJ_FLAG = 10
MAJ_QUIET = 11
MAJ_EXT = 12

P_CAN = 0
P_MINOR = 1
P_MAJOR = 2

_PROTO_CODES = {"can": P_CAN, "minorcan": P_MINOR, "majorcan": P_MAJOR}

#: Site-key sentinels: inert sites can never fire (the engine never
#: announces their position either), unsupported ones force the engine.
_INERT = -1
_UNSUPPORTED = -2


@dataclass(frozen=True)
class TailShape:
    """Precompiled tail geometry for one (protocol, m, frame).

    ``signal_shapes`` is the precompiled error-signalling table: flag
    and delimiter sequences are fixed shapes per config, so the batch
    replay treats them as run lengths instead of per-bit handlers —
    the same treatment :func:`repro.can.encoding.wire_program` gives
    the steady transmit path.
    """

    protocol: str
    proto: int
    m: int
    eof_length: int
    delimiter_length: int
    window_start: int
    window_end: int
    majority: int
    #: Index of ``(CRC_DELIM, 0)`` in the wire program (tail time 0).
    tail_offset: int
    #: Keys per node: 3 pre-EOF bits + EOF + (MajorCAN) sampling window.
    key_count: int
    #: Generous per-attempt step bound; overflow bails to the engine.
    attempt_cap: int
    #: Full program levels as one flat row (numpy row-matrix when
    #: available, plain tuple otherwise).
    levels_row: object
    #: Fixed signalling shapes: {"flag": 6, "delimiter": dl, ...}.
    signal_shapes: Tuple[Tuple[str, int], ...]
    supported: bool


@lru_cache(maxsize=256)
def tail_shape(protocol: str, m: int, frame: Frame) -> TailShape:
    """Build (and cache) the tail shape for one protocol + frame."""
    proto = _PROTO_CODES.get(protocol)
    probe = make_controller(protocol, "shape-probe", m=m)
    eof_length = probe.config.eof_length
    signalling = probe.signal_shape()
    delimiter_length = signalling.delimiter
    window_start = getattr(probe, "window_start", 0) or 0
    window_end = signalling.extended_flag_end
    majority = getattr(probe, "majority", 0) or 0
    program = wire_program(frame, eof_length)
    levels_row = (
        np.asarray(program.bit_values, dtype=np.int8)
        if HAVE_NUMPY
        else tuple(program.bit_values)
    )
    supported = proto is not None
    tail_offset = 0
    expected_positions = [(CRC_DELIM, 0), (ACK_SLOT, 0), (ACK_DELIM, 0)]
    expected_positions += [(EOF, index) for index in range(eof_length)]
    expected_ops = [OP_MATCH, OP_ACK, OP_MATCH] + [OP_EOF] * eof_length
    try:
        tail_offset = program.positions.index((CRC_DELIM, 0))
    except ValueError:
        supported = False
    if supported:
        tail = slice(tail_offset, None)
        supported = (
            list(program.positions[tail]) == expected_positions
            and list(program.ops[tail]) == expected_ops
            and all(value == 1 for value in program.bit_values[tail])
        )
    key_count = 3 + eof_length
    if proto == P_MAJOR:
        key_count += window_end + 1
    attempt_cap = (
        (3 + eof_length)
        + (window_end + 2)
        + signalling.error_flag
        + 4 * delimiter_length
        + signalling.intermission
        + 32
    )
    return TailShape(
        protocol=protocol,
        proto=proto if proto is not None else -1,
        m=m,
        eof_length=eof_length,
        delimiter_length=delimiter_length,
        window_start=window_start,
        window_end=window_end,
        majority=majority,
        tail_offset=tail_offset,
        key_count=key_count,
        attempt_cap=attempt_cap,
        levels_row=levels_row,
        signal_shapes=signalling.shapes,
        supported=supported,
    )


def _site_key(shape: TailShape, field: str, index: int) -> int:
    """Map a fault site to its tail key (or a sentinel).

    Keys 0..2 are the CRC delimiter / ACK slot / ACK delimiter bits,
    3+i the EOF bits, and (MajorCAN only) 3+E+p the sampling position
    ``p`` that quiet nodes announce.  Sites the tail never announces
    (out-of-range EOF indices, SAMPLING under CAN/MinorCAN) are inert:
    their trigger can never fire, exactly as in the engine.
    """
    if field == CRC_DELIM:
        return 0 if index == 0 else _INERT
    if field == ACK_SLOT:
        return 1 if index == 0 else _INERT
    if field == ACK_DELIM:
        return 2 if index == 0 else _INERT
    if field == EOF:
        if 0 <= index < shape.eof_length:
            return 3 + index
        return _INERT
    if field == SAMPLING:
        if shape.proto == P_MAJOR and 0 <= index <= shape.window_end:
            return 3 + shape.eof_length + index
        return _INERT
    return _UNSUPPORTED


@dataclass(frozen=True)
class PlacementOutcome:
    """Classification of one placement, aligned with ``node_names``."""

    deliveries: Tuple[int, ...]
    attempts: int
    via: str  # "batch" | "engine"

    @property
    def consistent(self) -> bool:
        return len(set(self.deliveries)) <= 1

    @property
    def inconsistent_omission(self) -> bool:
        return any(count == 0 for count in self.deliveries) and any(
            count > 0 for count in self.deliveries
        )

    @property
    def double_reception(self) -> bool:
        return any(count > 1 for count in self.deliveries)

    @property
    def kind(self) -> Optional[str]:
        """Counterexample kind, mirroring ``classify_placement``."""
        if self.inconsistent_omission:
            return "imo"
        if self.double_reception:
            return "double"
        if not self.consistent:
            return "inconsistent"
        return None


class BatchReplayEvaluator:
    """Classify batches of tail error placements without engine runs.

    Placements the micro-model cannot represent (unsupported fields,
    unexpected program layout, bailed simulations) transparently fall
    back to the engine, so every returned outcome is exact.
    """

    def __init__(
        self,
        protocol: str,
        m: int,
        node_names: Sequence[str],
        payload: bytes = b"\x55",
        frame: Optional[Frame] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.protocol = protocol
        self.m = m
        self.node_names = tuple(node_names)
        self.frame = frame if frame is not None else data_frame(
            0x123, payload, message_id="m"
        )
        self.shape = tail_shape(protocol, m, self.frame)
        self._node_index = {name: i for i, name in enumerate(self.node_names)}
        if backend is None:
            backend = "numpy"
        if backend == "numpy" and not HAVE_NUMPY:
            _notice_fallback()
            backend = "python"
        if backend not in ("numpy", "python"):
            raise ValueError("unknown batch backend %r" % (backend,))
        self.backend = backend
        #: Outcome provenance counters: placements classified by the
        #: array pass, the scalar micro-sim, the header class cache,
        #: and the engine fallback.
        self.stats: Dict[str, int] = {
            "batch": 0,
            "scalar": 0,
            "header": 0,
            "engine": 0,
        }

    # -- public API ----------------------------------------------------

    def evaluate(self, combos: Iterable[Sequence[Site]]) -> List[PlacementOutcome]:
        """Classify every placement; order follows the input.

        Verdicts are memoised in the process-wide :data:`_COMBO_CACHE`
        under a *canonical* combo key: duplicate triggers cancel by
        parity, and fault groups are relabelled onto the first
        receivers (receiver symmetry — see :meth:`_header_outcome`)
        with the cached delivery tuple permuted back on retrieval.
        Repeated placements — Monte-Carlo draws across chunks, the F1
        universe re-visiting tail-window sites — therefore classify at
        dictionary-lookup cost.  Cache hits count toward ``stats``
        under the provenance that first computed the verdict.
        """
        combos = [tuple(combo) for combo in combos]
        outcomes: List[Optional[PlacementOutcome]] = [None] * len(combos)
        pending: Dict[Tuple, List[Tuple[int, Optional[int]]]] = {}
        order: List[Tuple[Tuple, Tuple[Site, ...]]] = []
        for position, combo in enumerate(combos):
            key, back, canon = self._canonical(combo)
            if key is None:
                # A site names an unknown node: exact semantics live in
                # the engine and the combo is not worth caching.
                outcomes[position] = self._engine_outcome(combo)
                continue
            cached = _COMBO_CACHE.get(key)
            if cached is not None:
                self.stats[cached[2]] += 1
                outcomes[position] = self._expand(cached, back)
                continue
            if key in pending:
                pending[key].append((position, back))
                continue
            pending[key] = [(position, back)]
            order.append((key, canon))
        fast: List[Tuple[Tuple, Tuple[Site, ...], List[Tuple[int, int]]]] = []
        for key, canon in order:
            route, resolved = self._resolve(canon)
            if route == "fast":
                fast.append((key, canon, resolved))
            elif route == "header":
                self._finish(
                    outcomes, pending[key], key,
                    self._header_outcome(resolved), "header",
                )
            elif route == "reduced":
                self._finish(
                    outcomes, pending[key], key,
                    self._reduced_outcome(resolved), "header",
                )
            else:
                self._finish(
                    outcomes, pending[key], key,
                    self._engine_outcome(canon), "engine",
                )
        if fast:
            # The array pass pays a fixed per-call cost (its lockstep
            # loop runs to the slowest placement, ~60 ufunc dispatches
            # per bus bit) that only amortises over wide batches; small
            # batches are cheaper through the scalar micro-sim.
            if self.backend == "numpy" and len(fast) >= _ARRAY_BREAK_EVEN:
                verdicts = _simulate_numpy(
                    self.shape, len(self.node_names), [arm for _, _, arm in fast]
                )
                label = "batch"
            else:
                verdicts = [
                    _simulate_scalar(self.shape, len(self.node_names), arm)
                    for _, _, arm in fast
                ]
                label = "scalar"
            for (key, canon, arm), verdict in zip(fast, verdicts):
                stat = label
                if verdict is None:
                    # The common bail on dense placements is the step
                    # budget: every flip can restart the frame and the
                    # cascade outruns the nominal cap.  A single scalar
                    # retry with a widened budget stays exact (same
                    # transition table, more steps) and keeps these off
                    # the engine; genuine envelope violations bail
                    # again and fall through to the oracle.
                    verdict = _simulate_scalar(
                        self.shape, len(self.node_names), arm, cap_scale=8
                    )
                    stat = "scalar"
                if verdict is None:
                    self._finish(
                        outcomes, pending[key], key,
                        self._engine_outcome(canon), "engine",
                    )
                else:
                    deliveries, attempts = verdict
                    self.stats[stat] += 1
                    outcome = PlacementOutcome(
                        deliveries=deliveries, attempts=attempts, via="batch"
                    )
                    self._finish(outcomes, pending[key], key, outcome, stat)
        return outcomes  # type: ignore[return-value]

    def counterexample(
        self, combo: Sequence[Site], outcome: PlacementOutcome
    ) -> Optional[Tuple]:
        """The ``classify_placement``-shaped hit tuple, or None."""
        kind = outcome.kind
        if kind is None:
            return None
        deliveries = tuple(
            sorted(zip(self.node_names, outcome.deliveries))
        )
        return (tuple(combo), deliveries, outcome.attempts, kind)

    # -- internals -----------------------------------------------------

    def _canonical(
        self, combo: Sequence[Site]
    ) -> Tuple[Optional[Tuple], Optional[Tuple[int, ...]], Tuple[Site, ...]]:
        """Canonical cache key for ``combo`` plus its expansion hint.

        Returns ``(key, back, canon)``: ``key`` is the process-wide
        cache key (``None`` when a site names an unknown node and the
        combo must bypass the cache), ``canon`` is the combo actually
        evaluated, and ``back`` maps canonical receiver labels back to
        the real faulted nodes when the combo was re-targeted.

        Two exact reductions happen here so equivalent combos share one
        cache entry:

        * *parity*: duplicate triggers on one ``(node, field, index)``
          position all fire at the same first announcement, and a flip
          of a flip is the identity — an even repeat count cancels to
          nothing, an odd one collapses to a single flip;
        * *receiver symmetry*: the receivers are identical
          deterministic controllers, so permuting which of them carry
          which fault group permutes the deliveries and nothing else.
          The faulted receivers are relabelled ``1..k`` in sorted
          fault-group order, and ``back`` records the real node index
          behind each canonical label (``back[j-1]`` for label ``j``;
          ``None`` when the relabelling is the identity).
        """
        counts: Dict[Tuple[int, str, int], int] = {}
        try:
            for name, field_name, index in combo:
                site = (self._node_index[name], field_name, index)
                counts[site] = counts.get(site, 0) + 1
        except KeyError:
            return None, None, tuple(combo)
        sites = tuple(
            sorted(site for site, hits in counts.items() if hits % 2)
        )
        back: Optional[Tuple[int, ...]] = None
        rx_nodes = sorted({node for node, _, _ in sites if node != 0})
        if rx_nodes:
            groups = {
                node: tuple(
                    (f, i) for node2, f, i in sites if node2 == node
                )
                for node in rx_nodes
            }
            order = sorted(rx_nodes, key=lambda node: (groups[node], node))
            relabel = {node: 1 + j for j, node in enumerate(order)}
            if any(relabel[node] != node for node in rx_nodes):
                back = tuple(order)
                sites = tuple(
                    sorted(
                        (relabel.get(node, node), f, i)
                        for node, f, i in sites
                    )
                )
        key = (self.protocol, self.m, self.frame, len(self.node_names), sites)
        canon = tuple(
            (self.node_names[node], f, i) for node, f, i in sites
        )
        return key, back, canon

    def _expand(
        self,
        cached: Tuple[Tuple[int, ...], int, str],
        back: Optional[Tuple[int, ...]],
    ) -> PlacementOutcome:
        """Rebuild an outcome from a cache entry, undoing ``back``.

        The cached deliveries are for the canonical arrangement —
        transmitter at 0, faulted receivers at ``1..k``, witnesses
        after — and every witness delivery is equal by symmetry, so the
        permutation only needs the canonical-label-to-real-node map.
        """
        deliveries, attempts, stat = cached
        if back is not None:
            k = len(back)
            n = len(deliveries)
            witness = deliveries[k + 1] if k + 1 < n else 0
            rebuilt = [witness] * n
            rebuilt[0] = deliveries[0]
            for label, node in enumerate(back, start=1):
                rebuilt[node] = deliveries[label]
            deliveries = tuple(rebuilt)
        via = "engine" if stat == "engine" else "batch"
        return PlacementOutcome(
            deliveries=deliveries, attempts=attempts, via=via
        )

    def _finish(
        self,
        outcomes: List[Optional[PlacementOutcome]],
        waiters: List[Tuple[int, Optional[int]]],
        key: Tuple,
        outcome: PlacementOutcome,
        stat: str,
    ) -> None:
        """Record a fresh canonical verdict and fan it out to waiters."""
        if len(_COMBO_CACHE) >= _COMBO_CACHE_LIMIT:
            _COMBO_CACHE.clear()
        entry = (outcome.deliveries, outcome.attempts, stat)
        _COMBO_CACHE[key] = entry
        first = True
        for position, back in waiters:
            if not first:
                self.stats[stat] += 1
            first = False
            outcomes[position] = self._expand(entry, back)

    def _header_shape(self):
        return header_shape(self.frame, self.shape.eof_length)

    def _resolve(self, combo: Sequence[Site]) -> Tuple[str, object]:
        """Route a combo to one of the four classification paths.

        Returns ``("fast", armed_keys)`` for pure tail placements,
        ``("header", (node, field, index))`` for a single announced
        header-site flip, ``("reduced", (header_hits, tail_sites))``
        for multi-fault combos touching a header site, and
        ``("engine", None)`` for anything outside the modelled envelope
        (unknown nodes or fields, unexpected program layouts).
        Duplicate triggers never reach this point — :meth:`_canonical`
        cancels them by parity before the combo is resolved.

        Config-inert tail sites — positions no parse of this controller
        configuration can ever announce — are dropped outright, exactly
        as in the engine where their trigger can never fire.  A header
        site outside the nominal announced set is subtler: an earlier
        fault on the *same* node can shift that node's parse until the
        position appears (a corrupted DLC lengthens the data field, a
        mid-frame error truncates attempt one and re-announces in the
        retry), while faults on other nodes only ever truncate the
        bus's nominal prefix and cannot conjure new positions.  Such a
        site is therefore dropped only when its node carries no other
        live site in the combo; otherwise it rides along into the
        reduced run, which replays the real engine and needs no
        announcement reasoning.
        """
        if not self.shape.supported:
            return ("engine", None)
        armed: List[Tuple[int, int]] = []
        tail_sites: List[Tuple[int, str, int]] = []
        header_hits: List[Tuple[int, str, int]] = []
        silent: List[Tuple[int, str, int]] = []
        live_nodes = set()
        shape = None
        for name, field_name, index in combo:
            node = self._node_index.get(name)
            if node is None:
                return ("engine", None)
            if field_name in HEADER_SITE_FIELDS:
                if shape is None:
                    shape = self._header_shape()
                if (field_name, index) in shape.announced:
                    header_hits.append((node, field_name, index))
                    live_nodes.add(node)
                else:
                    silent.append((node, field_name, index))
                continue
            key = _site_key(self.shape, field_name, index)
            if key == _UNSUPPORTED:
                return ("engine", None)
            if key == _INERT:
                continue
            armed.append((node, key))
            tail_sites.append((node, field_name, index))
            live_nodes.add(node)
        header_hits += [site for site in silent if site[0] in live_nodes]
        if header_hits:
            if (
                len(header_hits) == 1
                and not armed
                and len(self.node_names) >= 2
            ):
                return ("header", header_hits[0])
            return ("reduced", (tuple(header_hits), tuple(tail_sites)))
        return ("fast", armed)

    def _header_outcome(
        self, hit: Tuple[int, str, int]
    ) -> PlacementOutcome:
        """Classify a single announced header-site flip exactly.

        Rests on receiver symmetry: the controllers are deterministic
        and a view fault never disturbs the bus until the faulted node
        itself drives, so every non-faulted in-sync receiver behaves
        bit-identically, and the wired-AND bus is invariant under
        replacing ``k`` identical receivers with one.  The full n-node
        outcome therefore follows exactly from a *reduced* engine run:
        faulted transmitter + one witness receiver (role ``tx``), or
        transmitter + faulted receiver + one witness (role ``rx``,
        two nodes when no witness exists).  Reduced verdicts are cached
        per equivalence class in :data:`_HEADER_CLASS_CACHE`; receiver
        flips in the mid-frame DATA/CRC fields additionally share one
        class per :class:`~repro.can.encoding.HeaderSiteRow` parse
        signature (identical flipped-stream trajectories drive the
        faulted receiver — and hence the whole bus — identically).
        """
        node, field_name, index = hit
        n = len(self.node_names)
        role = "tx" if node == 0 else "rx"
        if role == "tx":
            n_eff = 2
            class_key: Tuple = ("site", field_name, index)
        else:
            n_eff = 2 if n == 2 else 3
            row = self._header_shape().by_site[(field_name, index)]
            if field_name in (DATA, CRC) and row.kind != HEADER_KIND_OVERRUN:
                class_key = ("sig", row.signature)
            else:
                class_key = ("site", field_name, index)
        cache_key = (self.protocol, self.m, self.frame, role, n_eff, class_key)
        verdict = _HEADER_CLASS_CACHE.get(cache_key)
        if verdict is None:
            verdict = _header_class_run(
                self.protocol, self.m, self.frame, role, n_eff,
                field_name, index,
            )
            _HEADER_CLASS_CACHE[cache_key] = verdict
        tx_count, faulted_count, witness_count, attempts = verdict
        if role == "tx":
            deliveries = tuple(
                faulted_count if i == 0 else witness_count for i in range(n)
            )
        else:
            deliveries = tuple(
                tx_count if i == 0
                else (faulted_count if i == node else witness_count)
                for i in range(n)
            )
        self.stats["header"] += 1
        return PlacementOutcome(
            deliveries=deliveries, attempts=attempts, via="batch"
        )

    def _reduced_outcome(
        self,
        spec: Tuple[Tuple[Tuple[int, str, int], ...], Tuple[Tuple[int, str, int], ...]],
    ) -> PlacementOutcome:
        """Classify a multi-fault combo touching header sites exactly.

        Same receiver-symmetry argument as :meth:`_header_outcome`,
        generalised to several fault carriers: the full bus is
        invariant under collapsing all clean receivers into a single
        witness, so the n-node verdict follows from one *reduced*
        engine run over transmitter + the distinct faulted receivers +
        one witness (the witness is dropped when every receiver is
        faulted — its ACK and error flags would change the bus).
        Verdicts are cached per fault-group arrangement in
        :data:`_REDUCED_CACHE`; combined with the canonical relabelling
        in :meth:`_canonical`, one run serves every placement of the
        same fault groups over any receivers.
        """
        header_hits, tail_sites = spec
        sites = sorted(header_hits + tail_sites)
        rx_nodes = sorted({node for node, _, _ in sites if node != 0})
        n = len(self.node_names)
        k = len(rx_nodes)
        has_witness = k < n - 1
        label = {0: "tx"}
        for j, node in enumerate(rx_nodes, start=1):
            label[node] = "f%d" % j
        groups = tuple(
            tuple((f, i) for node2, f, i in sites if node2 == node)
            for node in [0] + rx_nodes
        )
        cache_key = (self.protocol, self.m, self.frame, groups, has_witness)
        verdict = _REDUCED_CACHE.get(cache_key)
        if verdict is None:
            verdict = _reduced_class_run(
                self.protocol, self.m, self.frame, groups, has_witness
            )
            _REDUCED_CACHE[cache_key] = verdict
        tx_count, faulted_counts, witness_count, attempts = verdict
        by_node = dict(zip(rx_nodes, faulted_counts))
        deliveries = tuple(
            tx_count if i == 0 else by_node.get(i, witness_count)
            for i in range(n)
        )
        self.stats["header"] += 1
        return PlacementOutcome(
            deliveries=deliveries, attempts=attempts, via="batch"
        )

    def _engine_outcome(self, combo: Sequence[Site]) -> PlacementOutcome:
        from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
        from repro.faults.scenarios import run_single_frame_scenario

        self.stats["engine"] += 1
        nodes = [
            make_controller(self.protocol, name, m=self.m)
            for name in self.node_names
        ]
        faults = [
            ViewFault(name, Trigger(field=field_name, index=index), force=None)
            for name, field_name, index in combo
        ]
        outcome = run_single_frame_scenario(
            "batchreplay-oracle",
            nodes,
            ScriptedInjector(view_faults=faults),
            frame=self.frame,
            record_bits=False,
            max_bits=60000,
        )
        return PlacementOutcome(
            deliveries=tuple(
                outcome.deliveries[name] for name in self.node_names
            ),
            attempts=outcome.attempts,
            via="engine",
        )


#: Reduced-run verdicts per header equivalence class, keyed by
#: ``(protocol, m, frame, role, n_eff, class_key)`` and holding
#: ``(tx_count, faulted_count, witness_count, attempts)``.  Module-level
#: so every evaluator in a process (and every chunk in a warmed pool
#: worker) shares one cache; entries are tiny tuples.
_HEADER_CLASS_CACHE: Dict[Tuple, Tuple[int, int, int, int]] = {}

#: Reduced-run verdicts per multi-fault group arrangement, keyed by
#: ``(protocol, m, frame, groups, has_witness)`` — ``groups`` being the
#: per-carrier fault-site tuples, transmitter first — and holding
#: ``(tx_count, faulted_counts, witness_count, attempts)``.  Shared
#: process-wide like the single-hit class cache above.
_REDUCED_CACHE: Dict[Tuple, Tuple[int, Tuple[int, ...], int, int]] = {}

#: Final verdicts per canonical placement, keyed by
#: ``(protocol, m, frame, n_nodes, canonical_sites)`` and holding
#: ``(deliveries, attempts, stat)``.  Shared by every evaluator in a
#: process, so chunked Monte-Carlo draws and overlapping verification
#: universes classify repeats at lookup cost.  Bounded by a wholesale
#: clear — entries are tiny and the universes that feed it are small,
#: so the limit only guards runaway many-frame campaigns.
_COMBO_CACHE: Dict[Tuple, Tuple[Tuple[int, ...], int, str]] = {}
_COMBO_CACHE_LIMIT = 1 << 19

#: Minimum fresh-placement batch for the numpy array pass; below this
#: the scalar micro-sim's ~40us/placement beats the array loop's fixed
#: per-call overhead (measured crossover is ~150 placements).
_ARRAY_BREAK_EVEN = 96


def clear_caches() -> None:
    """Empty the process-wide verdict caches (benchmarks and tests)."""
    _HEADER_CLASS_CACHE.clear()
    _REDUCED_CACHE.clear()
    _COMBO_CACHE.clear()


def _reduced_class_run(
    protocol: str,
    m: int,
    frame: Frame,
    groups: Sequence[Tuple[Tuple[str, int], ...]],
    has_witness: bool,
) -> Tuple[int, Tuple[int, ...], int, int]:
    """One reduced engine run classifying a multi-fault arrangement.

    ``groups`` holds the fault sites per carrier, transmitter first;
    the run instantiates one node per carrier plus one witness when the
    full network has a clean receiver left.
    """
    from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
    from repro.faults.scenarios import run_single_frame_scenario

    carriers = ["tx"] + ["f%d" % j for j in range(1, len(groups))]
    names = carriers + (["wit"] if has_witness else [])
    nodes = [make_controller(protocol, name, m=m) for name in names]
    faults = [
        ViewFault(name, Trigger(field=field_name, index=index), force=None)
        for name, group in zip(carriers, groups)
        for field_name, index in group
    ]
    outcome = run_single_frame_scenario(
        "batchreplay-reduced-class",
        nodes,
        ScriptedInjector(view_faults=faults),
        frame=frame,
        record_bits=False,
        max_bits=60000,
    )
    tx_count = outcome.deliveries["tx"]
    faulted_counts = tuple(
        outcome.deliveries[name] for name in carriers[1:]
    )
    witness_count = outcome.deliveries["wit"] if has_witness else 0
    return (tx_count, faulted_counts, witness_count, outcome.attempts)


def _header_class_run(
    protocol: str,
    m: int,
    frame: Frame,
    role: str,
    n_eff: int,
    field_name: str,
    index: int,
) -> Tuple[int, int, int, int]:
    """One reduced engine run classifying a header equivalence class."""
    from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
    from repro.faults.scenarios import run_single_frame_scenario

    names = ["flt", "wit"] if role == "tx" else ["tx", "flt", "wit"][:n_eff]
    nodes = [make_controller(protocol, name, m=m) for name in names]
    fault = ViewFault("flt", Trigger(field=field_name, index=index), force=None)
    outcome = run_single_frame_scenario(
        "batchreplay-header-class",
        nodes,
        ScriptedInjector(view_faults=[fault]),
        frame=frame,
        record_bits=False,
        max_bits=60000,
    )
    faulted_count = outcome.deliveries["flt"]
    tx_count = outcome.deliveries[names[0]]
    witness_count = (
        outcome.deliveries["wit"] if "wit" in outcome.deliveries else tx_count
    )
    return (tx_count, faulted_count, witness_count, outcome.attempts)


def warm_shapes(payload: bytes = b"\x55") -> None:
    """Pre-populate the wire/tail/header shape caches in this process.

    Called from the worker-pool initializer so every worker expands the
    default campaign frame once per campaign instead of once per chunk.
    Covers the protocols and ``m`` values the sweeps iterate over; other
    frames still warm lazily through the ``lru_cache``s.
    """
    frame = data_frame(0x123, payload, message_id="m")
    for protocol, ms in (
        ("can", (5,)),
        ("minorcan", (5,)),
        ("majorcan", (3, 4, 5, 6, 7)),
    ):
        for m in ms:
            shape = tail_shape(protocol, m, frame)
            header_shape(frame, shape.eof_length)


def warm_universe(entries: Sequence[Tuple[str, int, str]]) -> None:
    """Pre-populate the shape caches for an explicit cell universe.

    ``entries`` is a sequence of ``(protocol, m, payload_hex)`` triples
    — the distinct frame universes of a sweep, picklable so the driver
    can broadcast them to pool workers once per fork (via the pool's
    worker context) instead of letting every chunk warm its own.  Like
    :func:`warm_shapes` this is purely a cache fill; bad entries are
    skipped rather than raised so a stale context can never take a
    worker down.
    """
    for protocol, m, payload_hex in entries:
        try:
            frame = data_frame(
                0x123, bytes.fromhex(payload_hex), message_id="m"
            )
            shape = tail_shape(protocol, int(m), frame)
            header_shape(frame, shape.eof_length)
        except Exception:  # pragma: no cover - warm-up must stay harmless
            continue


#: Display order of the provenance counters in stats lines.
_STAT_KEYS = ("batch", "scalar", "header", "resume", "engine")

#: Engine share above which :func:`engine_share_notice` speaks up.
ENGINE_SHARE_NOTICE = 0.10


def format_stats(stats: Dict[str, int]) -> str:
    """One-line ``backend stats:`` summary of a provenance split."""
    total = sum(stats.get(key, 0) for key in _STAT_KEYS)
    parts = " ".join(
        "%s=%d" % (key, stats.get(key, 0)) for key in _STAT_KEYS
    )
    return "backend stats: %s (total %d)" % (parts, total)


def engine_share_notice(stats: Dict[str, int]) -> Optional[str]:
    """Log and return a notice when the engine share exceeds 10%.

    Silent engine bail-outs erode the batch backend's speedup without
    changing results; the notice makes a coverage gap visible in CLI
    output and logs.  Returns ``None`` when the share is acceptable.
    """
    total = sum(stats.get(key, 0) for key in _STAT_KEYS)
    engine = stats.get("engine", 0)
    if not total or engine / total <= ENGINE_SHARE_NOTICE:
        return None
    message = (
        "notice: engine fallback classified %d/%d placements (%.0f%% > %.0f%%)"
        % (engine, total, 100.0 * engine / total, 100.0 * ENGINE_SHARE_NOTICE)
    )
    logger.info(message)
    return message


def classify_placements(
    protocol: str,
    m: int,
    node_names: Sequence[str],
    combos: Sequence[Sequence[Site]],
    payload: bytes,
    backend: Optional[str] = None,
) -> List[Optional[Tuple]]:
    """Batch counterpart of ``verification.classify_placement``.

    Returns, per combo, the same picklable hit tuple (or None) the
    engine-backed classifier produces.
    """
    evaluator = BatchReplayEvaluator(
        protocol, m, node_names, payload=payload, backend=backend
    )
    outcomes = evaluator.evaluate(combos)
    return [
        evaluator.counterexample(combo, outcome)
        for combo, outcome in zip(combos, outcomes)
    ]


def _notice_fallback() -> None:
    global _fallback_noticed
    if not _fallback_noticed:
        logger.info(
            "numpy unavailable: batch backend falling back to the "
            "pure-python micro-simulator (install repro[fast] for the "
            "vectorised path)"
        )
        _fallback_noticed = True


# ---------------------------------------------------------------------------
# Pure-python scalar micro-simulator (the numpy-absent fallback)
# ---------------------------------------------------------------------------


def _simulate_scalar(
    shape: TailShape,
    n_nodes: int,
    armed_pairs: Sequence[Tuple[int, int]],
    cap_scale: int = 1,
) -> Optional[Tuple[Tuple[int, ...], int]]:
    """Replay one placement on the tail micro-model.

    Returns ``(deliveries, attempts)`` or None to bail to the engine.
    ``cap_scale`` widens the step budget for the cascade-overflow
    retry: placements whose flips keep restarting the frame legally
    outrun the nominal per-attempt bound without leaving the modelled
    envelope.
    """
    eof = shape.eof_length
    last = eof - 1
    dl = shape.delimiter_length
    proto = shape.proto
    mm = shape.majority
    ws = shape.window_start
    we = shape.window_end
    n = n_nodes
    quiet_base = 3 + eof

    st = [TX_PROG] + [RX_PROG] * (n - 1)
    flag = [0] * n
    drem = [0] * n
    ipos = [0] * n
    first = [False] * n
    defer = [False] * n
    samp = [False] * n
    votes = [0] * n
    deliver = [0] * n
    pending = True
    attempts = 1
    t = 0
    armed = set(armed_pairs)
    cap = ((len(armed) + 2) * shape.attempt_cap + 16) * cap_scale

    for _ in range(cap):
        # Drive phase: active flags are dominant; receivers acknowledge.
        bus = False
        for i in range(n):
            s = st[i]
            if s in (FLAG, OVL_FLAG, MAJ_FLAG, MAJ_EXT) or (
                s == RX_PROG and t == 1
            ):
                bus = True
                break
        # Fault firing: each node announces at most one tail key.
        seen = [bus] * n
        if armed:
            for i in range(n):
                s = st[i]
                if s == TX_PROG or s == RX_PROG:
                    key = t
                elif s == MAJ_QUIET and 0 <= t - 2 <= we:
                    key = quiet_base + (t - 2)
                else:
                    continue
                pair = (i, key)
                if pair in armed:
                    armed.discard(pair)
                    seen[i] = not bus
        # Bit phase.
        for i in range(n):
            s = st[i]
            d = seen[i]
            if s == TX_PROG or s == RX_PROG:
                is_tx = s == TX_PROG
                if t >= 3:
                    index = t - 3
                    if proto == P_CAN:
                        if is_tx:
                            if d:
                                st[i] = FLAG
                                flag[i] = FLAG_LENGTH
                                first[i] = True
                                defer[i] = False
                            elif index == last:
                                pending = False
                                deliver[i] += 1
                                st[i] = INTER
                                ipos[i] = 0
                        else:
                            if index < last:
                                if d:
                                    st[i] = FLAG
                                    flag[i] = FLAG_LENGTH
                                    first[i] = True
                                    defer[i] = False
                                elif index == last - 1:
                                    deliver[i] += 1
                            elif d:
                                st[i] = OVL_FLAG
                                flag[i] = FLAG_LENGTH
                            else:
                                st[i] = INTER
                                ipos[i] = 0
                    elif proto == P_MINOR:
                        if d:
                            st[i] = FLAG
                            flag[i] = FLAG_LENGTH
                            first[i] = True
                            defer[i] = index == last
                        elif index == last:
                            if is_tx:
                                pending = False
                            deliver[i] += 1
                            st[i] = INTER
                            ipos[i] = 0
                    else:  # MajorCAN
                        if d:
                            if index + 1 <= mm:
                                st[i] = MAJ_FLAG
                                flag[i] = FLAG_LENGTH
                                samp[i] = True
                                votes[i] = 0
                            else:
                                # Second sub-field: accept now.
                                if is_tx:
                                    pending = False
                                deliver[i] += 1
                                st[i] = MAJ_EXT
                        elif index == last:
                            if is_tx:
                                pending = False
                            deliver[i] += 1
                            st[i] = INTER
                            ipos[i] = 0
                elif (t != 1 and d) or (t == 1 and is_tx and not d):
                    # Dominant delimiter bit, or a missing ACK: an
                    # error whose flag starts inside the frame tail.
                    if proto == P_MAJOR:
                        st[i] = MAJ_FLAG
                        flag[i] = FLAG_LENGTH
                        samp[i] = False
                    else:
                        st[i] = FLAG
                        flag[i] = FLAG_LENGTH
                        first[i] = True
                        defer[i] = False
            elif s == FLAG:
                flag[i] -= 1
                if flag[i] <= 0:
                    st[i] = WAIT
            elif s == WAIT:
                if first[i]:
                    first[i] = False
                    if defer[i]:
                        defer[i] = False
                        if d:  # primary error: accept
                            if i == 0:
                                pending = False
                            deliver[i] += 1
                if not d:
                    drem[i] = dl - 1
                    st[i] = DELIM
            elif s == DELIM or s == OVL_DELIM:
                if d:
                    if drem[i] <= 1:
                        st[i] = OVL_FLAG
                        flag[i] = FLAG_LENGTH
                    else:
                        st[i] = FLAG
                        flag[i] = FLAG_LENGTH
                        first[i] = True
                        defer[i] = False
                else:
                    drem[i] -= 1
                    if drem[i] <= 0:
                        st[i] = INTER
                        ipos[i] = 0
            elif s == OVL_FLAG:
                flag[i] -= 1
                if flag[i] <= 0:
                    st[i] = OVL_WAIT
            elif s == OVL_WAIT:
                if not d:
                    drem[i] = dl - 1
                    st[i] = OVL_DELIM
            elif s == INTER:
                if d:
                    if ipos[i] < INTERMISSION_LENGTH - 1:
                        st[i] = OVL_FLAG
                        flag[i] = FLAG_LENGTH
                    else:
                        return None  # un-orchestrated start of frame
                else:
                    ipos[i] += 1
                    if ipos[i] >= INTERMISSION_LENGTH:
                        st[i] = IDLE
            elif s == IDLE:
                if d:
                    return None  # reception outside the restart
            elif s == MAJ_FLAG:
                flag[i] -= 1
                if flag[i] <= 0:
                    st[i] = MAJ_QUIET
            elif s == MAJ_QUIET:
                clock = t - 2
                if samp[i] and ws <= clock <= we and d:
                    votes[i] += 1
                if clock >= we:
                    if samp[i]:
                        samp[i] = False
                        if votes[i] >= mm:
                            if i == 0:
                                pending = False
                            deliver[i] += 1
                    st[i] = WAIT
                    first[i] = False
                    defer[i] = False
            else:  # MAJ_EXT
                if t - 2 >= we:
                    st[i] = WAIT
                    first[i] = False
                    defer[i] = False
        t += 1
        # End of step: finished, or an orchestrated retransmission.
        if st[0] == IDLE:
            if not pending:
                if all(s == IDLE for s in st):
                    return tuple(deliver), attempts
            else:
                for j in range(1, n):
                    if st[j] != IDLE and not (
                        st[j] == INTER and ipos[j] == INTERMISSION_LENGTH - 1
                    ):
                        return None
                attempts += 1
                t = 0
                st = [TX_PROG] + [RX_PROG] * (n - 1)
                for j in range(n):
                    flag[j] = drem[j] = ipos[j] = votes[j] = 0
                    first[j] = defer[j] = samp[j] = False
    return None  # step budget exhausted


# ---------------------------------------------------------------------------
# Numpy batched micro-simulator: (batch, node) arrays, single passes
# ---------------------------------------------------------------------------


def _simulate_numpy(
    shape: TailShape,
    n_nodes: int,
    placements: Sequence[Sequence[Tuple[int, int]]],
) -> List[Optional[Tuple[Tuple[int, ...], int]]]:
    """Replay a batch of placements in lockstep array passes.

    Semantically identical to :func:`_simulate_scalar`; each loop
    iteration advances *every* live placement by one bus bit with
    whole-array operations.
    """
    assert np is not None
    batch = len(placements)
    if batch == 0:
        return []
    n = n_nodes
    eof = shape.eof_length
    last = eof - 1
    dl = shape.delimiter_length
    proto = shape.proto
    mm = shape.majority
    ws = shape.window_start
    we = shape.window_end
    quiet_base = 3 + eof

    armed = np.zeros((batch, n, shape.key_count), dtype=bool)
    max_flips = 0
    for b, pairs in enumerate(placements):
        max_flips = max(max_flips, len(pairs))
        for node, key in pairs:
            armed[b, node, key] = True

    st = np.full((batch, n), RX_PROG, dtype=np.int8)
    st[:, 0] = TX_PROG
    flag = np.zeros((batch, n), dtype=np.int16)
    drem = np.zeros((batch, n), dtype=np.int16)
    ipos = np.zeros((batch, n), dtype=np.int16)
    first = np.zeros((batch, n), dtype=bool)
    defer = np.zeros((batch, n), dtype=bool)
    samp = np.zeros((batch, n), dtype=bool)
    votes = np.zeros((batch, n), dtype=np.int16)
    deliver = np.zeros((batch, n), dtype=np.int32)
    pending = np.ones(batch, dtype=bool)
    attempts = np.ones(batch, dtype=np.int32)
    t = np.zeros(batch, dtype=np.int32)
    bail = np.zeros(batch, dtype=bool)
    done = np.zeros(batch, dtype=bool)

    cap = (max_flips + 2) * shape.attempt_cap + 16
    for _ in range(cap):
        act = ~(bail | done)
        if not act.any():
            break
        act_n = act[:, None]
        tt = t[:, None]
        # Drive phase.
        dominant_state = (
            (st == FLAG) | (st == OVL_FLAG) | (st == MAJ_FLAG) | (st == MAJ_EXT)
        )
        drives = dominant_state | ((st == RX_PROG) & (tt == 1))
        bus = (drives & act_n).any(axis=1)
        # Fault firing.
        prog = (st == TX_PROG) | (st == RX_PROG)
        key = np.where(prog & act_n, tt, -1)
        if proto == P_MAJOR:
            clock = tt - 2
            quiet = (st == MAJ_QUIET) & (clock >= 0) & (clock <= we) & act_n
            key = np.where(quiet, quiet_base + clock, key)
        b_idx, n_idx = np.nonzero(key >= 0)
        k_idx = key[b_idx, n_idx]
        fired_flat = armed[b_idx, n_idx, k_idx]
        armed[b_idx, n_idx, k_idx] = False
        fired = np.zeros((batch, n), dtype=bool)
        fired[b_idx, n_idx] = fired_flat
        seen = bus[:, None] ^ fired
        # Bit phase: masks from the state snapshot are disjoint per node.
        stv = st.copy()
        m_tx = (stv == TX_PROG) & act_n
        m_rx = (stv == RX_PROG) & act_n
        m_prog = m_tx | m_rx
        pre = m_prog & (tt < 3)
        tail_err = (pre & (tt != 1) & seen) | (m_tx & (tt == 1) & ~seen)
        m_eof = m_prog & (tt >= 3)
        index = tt - 3
        plain = np.zeros((batch, n), dtype=bool)
        to_defer = np.zeros((batch, n), dtype=bool)
        to_ovl = np.zeros((batch, n), dtype=bool)
        maj_flag_entry = np.zeros((batch, n), dtype=bool)
        maj_ext_entry = np.zeros((batch, n), dtype=bool)
        finish = np.zeros((batch, n), dtype=bool)
        if proto == P_CAN:
            plain |= (m_tx & m_eof & seen) | (m_rx & m_eof & seen & (index < last))
            deliver[m_rx & m_eof & ~seen & (index == last - 1)] += 1
            to_ovl |= m_rx & m_eof & seen & (index == last)
            finish |= m_eof & ~seen & (index == last)
            # CAN receivers already delivered at the last-but-one bit.
            succeed = m_tx & m_eof & ~seen & (index == last)
        elif proto == P_MINOR:
            plain |= m_eof & seen & (index < last)
            to_defer |= m_eof & seen & (index == last)
            finish |= m_eof & ~seen & (index == last)
            succeed = finish
        else:
            maj_err = m_eof & seen
            maj_flag_entry |= maj_err & (index + 1 <= mm)
            maj_ext_entry |= maj_err & (index + 1 > mm)
            finish |= m_eof & ~seen & (index == last)
            succeed = finish
        if proto == P_MAJOR:
            maj_tail_entry = tail_err
        else:
            maj_tail_entry = None
            plain |= tail_err
        # FLAG
        m = (stv == FLAG) & act_n
        flag[m] -= 1
        st[m & (flag <= 0)] = WAIT
        # WAIT
        m = (stv == WAIT) & act_n
        fb = m & first
        first[fb] = False
        resolved = fb & defer
        defer[resolved] = False
        accepted = resolved & seen
        deliver[accepted] += 1
        pending[accepted[:, 0]] = False
        to_delim = m & ~seen
        st[to_delim] = DELIM
        drem[to_delim] = dl - 1
        # DELIM / OVL_DELIM
        for state_from in (DELIM, OVL_DELIM):
            m = (stv == state_from) & act_n
            dominant = m & seen
            to_ovl |= dominant & (drem <= 1)
            plain |= dominant & (drem > 1)
            recessive = m & ~seen
            drem[recessive] -= 1
            to_inter = recessive & (drem <= 0)
            st[to_inter] = INTER
            ipos[to_inter] = 0
        # OVL_FLAG
        m = (stv == OVL_FLAG) & act_n
        flag[m] -= 1
        st[m & (flag <= 0)] = OVL_WAIT
        # OVL_WAIT
        m = (stv == OVL_WAIT) & act_n & ~seen
        st[m] = OVL_DELIM
        drem[m] = dl - 1
        # INTER
        m = (stv == INTER) & act_n
        dominant = m & seen
        to_ovl |= dominant & (ipos < INTERMISSION_LENGTH - 1)
        bail |= (dominant & (ipos >= INTERMISSION_LENGTH - 1)).any(axis=1)
        recessive = m & ~seen
        ipos[recessive] += 1
        st[recessive & (ipos >= INTERMISSION_LENGTH)] = IDLE
        # IDLE
        bail |= ((stv == IDLE) & act_n & seen).any(axis=1)
        # MAJ states
        if proto == P_MAJOR:
            m = (stv == MAJ_FLAG) & act_n
            flag[m] -= 1
            st[m & (flag <= 0)] = MAJ_QUIET
            m = (stv == MAJ_QUIET) & act_n
            clock = tt - 2
            votes[m & samp & (clock >= ws) & (clock <= we) & seen] += 1
            exiting = m & (clock >= we)
            verdict = exiting & samp
            samp[verdict] = False
            accepted = verdict & (votes >= mm)
            deliver[accepted] += 1
            pending[accepted[:, 0]] = False
            st[exiting] = WAIT
            first[exiting] = False
            defer[exiting] = False
            ext = (stv == MAJ_EXT) & act_n & (tt - 2 >= we)
            st[ext] = WAIT
            first[ext] = False
            defer[ext] = False
        # Apply the PROG-derived entries last (masks are disjoint from
        # the epilogue-state masks above — a node is in one state).
        st[plain] = FLAG
        flag[plain] = FLAG_LENGTH
        first[plain] = True
        defer[plain] = False
        st[to_defer] = FLAG
        flag[to_defer] = FLAG_LENGTH
        first[to_defer] = True
        defer[to_defer] = True
        st[to_ovl] = OVL_FLAG
        flag[to_ovl] = FLAG_LENGTH
        if maj_tail_entry is not None:
            st[maj_tail_entry] = MAJ_FLAG
            flag[maj_tail_entry] = FLAG_LENGTH
            samp[maj_tail_entry] = False
        if proto == P_MAJOR:
            st[maj_flag_entry] = MAJ_FLAG
            flag[maj_flag_entry] = FLAG_LENGTH
            samp[maj_flag_entry] = True
            votes[maj_flag_entry] = 0
            deliver[maj_ext_entry] += 1
            pending[maj_ext_entry[:, 0]] = False
            st[maj_ext_entry] = MAJ_EXT
        deliver[succeed] += 1
        pending[succeed[:, 0]] = False
        st[finish] = INTER
        ipos[finish] = 0
        t = np.where(act, t + 1, t)
        # End of step: completion and orchestrated restarts.
        tx_idle = act & (st[:, 0] == IDLE)
        all_idle = (st == IDLE).all(axis=1)
        done |= tx_idle & all_idle & ~pending
        restart = tx_idle & pending & ~done & ~bail
        if restart.any():
            ready = (st == IDLE) | ((st == INTER) & (ipos == INTERMISSION_LENGTH - 1))
            ok = restart & ready[:, 1:].all(axis=1)
            bail |= restart & ~ok
            if ok.any():
                attempts[ok] += 1
                t[ok] = 0
                st[ok, :] = RX_PROG
                st[ok, 0] = TX_PROG
                flag[ok, :] = 0
                drem[ok, :] = 0
                ipos[ok, :] = 0
                votes[ok, :] = 0
                first[ok, :] = False
                defer[ok, :] = False
                samp[ok, :] = False
    bail |= ~(done | bail)  # step budget exhausted
    results: List[Optional[Tuple[Tuple[int, ...], int]]] = []
    for b in range(batch):
        if bail[b]:
            results.append(None)
        else:
            results.append((tuple(int(x) for x in deliver[b]), int(attempts[b])))
    return results
