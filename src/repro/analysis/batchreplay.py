"""Vectorised batch replay of wire programs over tail error placements.

``verify_consistency`` and ``enumerate_tail_patterns`` classify one
error placement per full engine run: every placement re-simulates the
whole frame bit by bit even though all the fault sites live in the
frame *tail* (CRC delimiter, ACK slot, ACK delimiter, EOF, and the
MajorCAN sampling window) and the pre-tail portion of every attempt is
therefore identical and error-free.  This module exploits that: it
expands the cached :class:`repro.can.encoding.WireProgram` into flat
row-matrices, precompiles the fixed error-signalling shapes (error and
overload flags are always :data:`FLAG_LENGTH` dominant bits, delimiters
are fixed recessive runs per config — the same table treatment the
transmit program already gets), and replays **batches of placements in
lockstep array passes** over a tail-only micro-model of the controller
state machine.

The micro-model is *exact by construction* on the placements it
understands, and it refuses the rest:

* every supported fault site is announced at a fixed tail time, so the
  per-placement state is a handful of small integers per node;
* any situation outside the modelled envelope — an unexpected program
  layout, a fault field the tail model does not announce, a dominant
  bit reaching an idle node outside the orchestrated retransmission
  restart, or a step-budget overflow — *bails out* and the placement is
  re-classified by the real engine (the oracle).

Two interchangeable backends implement the same transition table: a
numpy one evaluating ``(batch, node)`` arrays in single passes, and a
pure-python scalar one used automatically when numpy is absent (the
import is guarded; a notice is logged once per process).  The
differential suite pins both against the engine over the full tail-site
universe of every corpus frame.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.can.fields import (
    ACK_DELIM,
    ACK_SLOT,
    CRC_DELIM,
    EOF,
    FLAG_LENGTH,
    INTERMISSION_LENGTH,
    SAMPLING,
)
from repro.can.frame import Frame, data_frame
from repro.can.encoding import OP_ACK, OP_EOF, OP_MATCH, wire_program
from repro.faults.scenarios import make_controller

try:  # numpy is the optional ``repro[fast]`` extra
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the import-block tests
    np = None

HAVE_NUMPY = np is not None

logger = logging.getLogger(__name__)
_fallback_noticed = False

#: A fault site: (node name, field label, index within the field).
Site = Tuple[str, str, int]

# Micro-model states.  PROG states follow the compiled wire program
# (which never stalls, so the program index is the shared tail clock);
# the rest mirror the controller's error/overload epilogue states.
TX_PROG = 0
RX_PROG = 1
FLAG = 2
WAIT = 3
DELIM = 4
OVL_FLAG = 5
OVL_WAIT = 6
OVL_DELIM = 7
INTER = 8
IDLE = 9
MAJ_FLAG = 10
MAJ_QUIET = 11
MAJ_EXT = 12

P_CAN = 0
P_MINOR = 1
P_MAJOR = 2

_PROTO_CODES = {"can": P_CAN, "minorcan": P_MINOR, "majorcan": P_MAJOR}

#: Site-key sentinels: inert sites can never fire (the engine never
#: announces their position either), unsupported ones force the engine.
_INERT = -1
_UNSUPPORTED = -2


@dataclass(frozen=True)
class TailShape:
    """Precompiled tail geometry for one (protocol, m, frame).

    ``signal_shapes`` is the precompiled error-signalling table: flag
    and delimiter sequences are fixed shapes per config, so the batch
    replay treats them as run lengths instead of per-bit handlers —
    the same treatment :func:`repro.can.encoding.wire_program` gives
    the steady transmit path.
    """

    protocol: str
    proto: int
    m: int
    eof_length: int
    delimiter_length: int
    window_start: int
    window_end: int
    majority: int
    #: Index of ``(CRC_DELIM, 0)`` in the wire program (tail time 0).
    tail_offset: int
    #: Keys per node: 3 pre-EOF bits + EOF + (MajorCAN) sampling window.
    key_count: int
    #: Generous per-attempt step bound; overflow bails to the engine.
    attempt_cap: int
    #: Full program levels as one flat row (numpy row-matrix when
    #: available, plain tuple otherwise).
    levels_row: object
    #: Fixed signalling shapes: {"flag": 6, "delimiter": dl, ...}.
    signal_shapes: Tuple[Tuple[str, int], ...]
    supported: bool


@lru_cache(maxsize=256)
def tail_shape(protocol: str, m: int, frame: Frame) -> TailShape:
    """Build (and cache) the tail shape for one protocol + frame."""
    proto = _PROTO_CODES.get(protocol)
    probe = make_controller(protocol, "shape-probe", m=m)
    eof_length = probe.config.eof_length
    signalling = probe.signal_shape()
    delimiter_length = signalling.delimiter
    window_start = getattr(probe, "window_start", 0) or 0
    window_end = signalling.extended_flag_end
    majority = getattr(probe, "majority", 0) or 0
    program = wire_program(frame, eof_length)
    levels_row = (
        np.asarray(program.bit_values, dtype=np.int8)
        if HAVE_NUMPY
        else tuple(program.bit_values)
    )
    supported = proto is not None
    tail_offset = 0
    expected_positions = [(CRC_DELIM, 0), (ACK_SLOT, 0), (ACK_DELIM, 0)]
    expected_positions += [(EOF, index) for index in range(eof_length)]
    expected_ops = [OP_MATCH, OP_ACK, OP_MATCH] + [OP_EOF] * eof_length
    try:
        tail_offset = program.positions.index((CRC_DELIM, 0))
    except ValueError:
        supported = False
    if supported:
        tail = slice(tail_offset, None)
        supported = (
            list(program.positions[tail]) == expected_positions
            and list(program.ops[tail]) == expected_ops
            and all(value == 1 for value in program.bit_values[tail])
        )
    key_count = 3 + eof_length
    if proto == P_MAJOR:
        key_count += window_end + 1
    attempt_cap = (
        (3 + eof_length)
        + (window_end + 2)
        + signalling.error_flag
        + 4 * delimiter_length
        + signalling.intermission
        + 32
    )
    return TailShape(
        protocol=protocol,
        proto=proto if proto is not None else -1,
        m=m,
        eof_length=eof_length,
        delimiter_length=delimiter_length,
        window_start=window_start,
        window_end=window_end,
        majority=majority,
        tail_offset=tail_offset,
        key_count=key_count,
        attempt_cap=attempt_cap,
        levels_row=levels_row,
        signal_shapes=signalling.shapes,
        supported=supported,
    )


def _site_key(shape: TailShape, field: str, index: int) -> int:
    """Map a fault site to its tail key (or a sentinel).

    Keys 0..2 are the CRC delimiter / ACK slot / ACK delimiter bits,
    3+i the EOF bits, and (MajorCAN only) 3+E+p the sampling position
    ``p`` that quiet nodes announce.  Sites the tail never announces
    (out-of-range EOF indices, SAMPLING under CAN/MinorCAN) are inert:
    their trigger can never fire, exactly as in the engine.
    """
    if field == CRC_DELIM:
        return 0 if index == 0 else _INERT
    if field == ACK_SLOT:
        return 1 if index == 0 else _INERT
    if field == ACK_DELIM:
        return 2 if index == 0 else _INERT
    if field == EOF:
        if 0 <= index < shape.eof_length:
            return 3 + index
        return _INERT
    if field == SAMPLING:
        if shape.proto == P_MAJOR and 0 <= index <= shape.window_end:
            return 3 + shape.eof_length + index
        return _INERT
    return _UNSUPPORTED


@dataclass(frozen=True)
class PlacementOutcome:
    """Classification of one placement, aligned with ``node_names``."""

    deliveries: Tuple[int, ...]
    attempts: int
    via: str  # "batch" | "engine"

    @property
    def consistent(self) -> bool:
        return len(set(self.deliveries)) <= 1

    @property
    def inconsistent_omission(self) -> bool:
        return any(count == 0 for count in self.deliveries) and any(
            count > 0 for count in self.deliveries
        )

    @property
    def double_reception(self) -> bool:
        return any(count > 1 for count in self.deliveries)

    @property
    def kind(self) -> Optional[str]:
        """Counterexample kind, mirroring ``classify_placement``."""
        if self.inconsistent_omission:
            return "imo"
        if self.double_reception:
            return "double"
        if not self.consistent:
            return "inconsistent"
        return None


class BatchReplayEvaluator:
    """Classify batches of tail error placements without engine runs.

    Placements the micro-model cannot represent (unsupported fields,
    unexpected program layout, bailed simulations) transparently fall
    back to the engine, so every returned outcome is exact.
    """

    def __init__(
        self,
        protocol: str,
        m: int,
        node_names: Sequence[str],
        payload: bytes = b"\x55",
        frame: Optional[Frame] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.protocol = protocol
        self.m = m
        self.node_names = tuple(node_names)
        self.frame = frame if frame is not None else data_frame(
            0x123, payload, message_id="m"
        )
        self.shape = tail_shape(protocol, m, self.frame)
        self._node_index = {name: i for i, name in enumerate(self.node_names)}
        if backend is None:
            backend = "numpy"
        if backend == "numpy" and not HAVE_NUMPY:
            _notice_fallback()
            backend = "python"
        if backend not in ("numpy", "python"):
            raise ValueError("unknown batch backend %r" % (backend,))
        self.backend = backend
        #: Outcome provenance counters: placements classified by the
        #: array pass, the scalar micro-sim, and the engine fallback.
        self.stats: Dict[str, int] = {"batch": 0, "scalar": 0, "engine": 0}

    # -- public API ----------------------------------------------------

    def evaluate(self, combos: Iterable[Sequence[Site]]) -> List[PlacementOutcome]:
        """Classify every placement; order follows the input."""
        combos = [tuple(combo) for combo in combos]
        outcomes: List[Optional[PlacementOutcome]] = [None] * len(combos)
        fast: List[Tuple[int, List[Tuple[int, int]]]] = []
        for position, combo in enumerate(combos):
            armed = self._armed_keys(combo)
            if armed is None:
                outcomes[position] = self._engine_outcome(combo)
            else:
                fast.append((position, armed))
        if fast:
            if self.backend == "numpy":
                verdicts = _simulate_numpy(
                    self.shape, len(self.node_names), [arm for _, arm in fast]
                )
                label = "batch"
            else:
                verdicts = [
                    _simulate_scalar(self.shape, len(self.node_names), arm)
                    for _, arm in fast
                ]
                label = "scalar"
            for (position, _), verdict in zip(fast, verdicts):
                if verdict is None:
                    outcomes[position] = self._engine_outcome(combos[position])
                else:
                    deliveries, attempts = verdict
                    self.stats[label] += 1
                    outcomes[position] = PlacementOutcome(
                        deliveries=deliveries, attempts=attempts, via="batch"
                    )
        return outcomes  # type: ignore[return-value]

    def counterexample(
        self, combo: Sequence[Site], outcome: PlacementOutcome
    ) -> Optional[Tuple]:
        """The ``classify_placement``-shaped hit tuple, or None."""
        kind = outcome.kind
        if kind is None:
            return None
        deliveries = tuple(
            sorted(zip(self.node_names, outcome.deliveries))
        )
        return (tuple(combo), deliveries, outcome.attempts, kind)

    # -- internals -----------------------------------------------------

    def _armed_keys(
        self, combo: Sequence[Site]
    ) -> Optional[List[Tuple[int, int]]]:
        """Resolve a combo to (node, key) pairs; None means use the engine."""
        if not self.shape.supported:
            return None
        armed: List[Tuple[int, int]] = []
        seen_keys = set()
        for name, field_name, index in combo:
            node = self._node_index.get(name)
            if node is None:
                return None
            key = _site_key(self.shape, field_name, index)
            if key == _UNSUPPORTED:
                return None
            if key == _INERT:
                continue
            if (node, key) in seen_keys:
                # Two armed triggers on one position cancel out in the
                # engine (both fire on the same bit); rare enough to
                # leave to the oracle.
                return None
            seen_keys.add((node, key))
            armed.append((node, key))
        return armed

    def _engine_outcome(self, combo: Sequence[Site]) -> PlacementOutcome:
        from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
        from repro.faults.scenarios import run_single_frame_scenario

        self.stats["engine"] += 1
        nodes = [
            make_controller(self.protocol, name, m=self.m)
            for name in self.node_names
        ]
        faults = [
            ViewFault(name, Trigger(field=field_name, index=index), force=None)
            for name, field_name, index in combo
        ]
        outcome = run_single_frame_scenario(
            "batchreplay-oracle",
            nodes,
            ScriptedInjector(view_faults=faults),
            frame=self.frame,
            record_bits=False,
            max_bits=60000,
        )
        return PlacementOutcome(
            deliveries=tuple(
                outcome.deliveries[name] for name in self.node_names
            ),
            attempts=outcome.attempts,
            via="engine",
        )


def classify_placements(
    protocol: str,
    m: int,
    node_names: Sequence[str],
    combos: Sequence[Sequence[Site]],
    payload: bytes,
    backend: Optional[str] = None,
) -> List[Optional[Tuple]]:
    """Batch counterpart of ``verification.classify_placement``.

    Returns, per combo, the same picklable hit tuple (or None) the
    engine-backed classifier produces.
    """
    evaluator = BatchReplayEvaluator(
        protocol, m, node_names, payload=payload, backend=backend
    )
    outcomes = evaluator.evaluate(combos)
    return [
        evaluator.counterexample(combo, outcome)
        for combo, outcome in zip(combos, outcomes)
    ]


def _notice_fallback() -> None:
    global _fallback_noticed
    if not _fallback_noticed:
        logger.info(
            "numpy unavailable: batch backend falling back to the "
            "pure-python micro-simulator (install repro[fast] for the "
            "vectorised path)"
        )
        _fallback_noticed = True


# ---------------------------------------------------------------------------
# Pure-python scalar micro-simulator (the numpy-absent fallback)
# ---------------------------------------------------------------------------


def _simulate_scalar(
    shape: TailShape, n_nodes: int, armed_pairs: Sequence[Tuple[int, int]]
) -> Optional[Tuple[Tuple[int, ...], int]]:
    """Replay one placement on the tail micro-model.

    Returns ``(deliveries, attempts)`` or None to bail to the engine.
    """
    eof = shape.eof_length
    last = eof - 1
    dl = shape.delimiter_length
    proto = shape.proto
    mm = shape.majority
    ws = shape.window_start
    we = shape.window_end
    n = n_nodes
    quiet_base = 3 + eof

    st = [TX_PROG] + [RX_PROG] * (n - 1)
    flag = [0] * n
    drem = [0] * n
    ipos = [0] * n
    first = [False] * n
    defer = [False] * n
    samp = [False] * n
    votes = [0] * n
    deliver = [0] * n
    pending = True
    attempts = 1
    t = 0
    armed = set(armed_pairs)
    cap = (len(armed) + 2) * shape.attempt_cap + 16

    for _ in range(cap):
        # Drive phase: active flags are dominant; receivers acknowledge.
        bus = False
        for i in range(n):
            s = st[i]
            if s in (FLAG, OVL_FLAG, MAJ_FLAG, MAJ_EXT) or (
                s == RX_PROG and t == 1
            ):
                bus = True
                break
        # Fault firing: each node announces at most one tail key.
        seen = [bus] * n
        if armed:
            for i in range(n):
                s = st[i]
                if s == TX_PROG or s == RX_PROG:
                    key = t
                elif s == MAJ_QUIET and 0 <= t - 2 <= we:
                    key = quiet_base + (t - 2)
                else:
                    continue
                pair = (i, key)
                if pair in armed:
                    armed.discard(pair)
                    seen[i] = not bus
        # Bit phase.
        for i in range(n):
            s = st[i]
            d = seen[i]
            if s == TX_PROG or s == RX_PROG:
                is_tx = s == TX_PROG
                if t >= 3:
                    index = t - 3
                    if proto == P_CAN:
                        if is_tx:
                            if d:
                                st[i] = FLAG
                                flag[i] = FLAG_LENGTH
                                first[i] = True
                                defer[i] = False
                            elif index == last:
                                pending = False
                                deliver[i] += 1
                                st[i] = INTER
                                ipos[i] = 0
                        else:
                            if index < last:
                                if d:
                                    st[i] = FLAG
                                    flag[i] = FLAG_LENGTH
                                    first[i] = True
                                    defer[i] = False
                                elif index == last - 1:
                                    deliver[i] += 1
                            elif d:
                                st[i] = OVL_FLAG
                                flag[i] = FLAG_LENGTH
                            else:
                                st[i] = INTER
                                ipos[i] = 0
                    elif proto == P_MINOR:
                        if d:
                            st[i] = FLAG
                            flag[i] = FLAG_LENGTH
                            first[i] = True
                            defer[i] = index == last
                        elif index == last:
                            if is_tx:
                                pending = False
                            deliver[i] += 1
                            st[i] = INTER
                            ipos[i] = 0
                    else:  # MajorCAN
                        if d:
                            if index + 1 <= mm:
                                st[i] = MAJ_FLAG
                                flag[i] = FLAG_LENGTH
                                samp[i] = True
                                votes[i] = 0
                            else:
                                # Second sub-field: accept now.
                                if is_tx:
                                    pending = False
                                deliver[i] += 1
                                st[i] = MAJ_EXT
                        elif index == last:
                            if is_tx:
                                pending = False
                            deliver[i] += 1
                            st[i] = INTER
                            ipos[i] = 0
                elif (t != 1 and d) or (t == 1 and is_tx and not d):
                    # Dominant delimiter bit, or a missing ACK: an
                    # error whose flag starts inside the frame tail.
                    if proto == P_MAJOR:
                        st[i] = MAJ_FLAG
                        flag[i] = FLAG_LENGTH
                        samp[i] = False
                    else:
                        st[i] = FLAG
                        flag[i] = FLAG_LENGTH
                        first[i] = True
                        defer[i] = False
            elif s == FLAG:
                flag[i] -= 1
                if flag[i] <= 0:
                    st[i] = WAIT
            elif s == WAIT:
                if first[i]:
                    first[i] = False
                    if defer[i]:
                        defer[i] = False
                        if d:  # primary error: accept
                            if i == 0:
                                pending = False
                            deliver[i] += 1
                if not d:
                    drem[i] = dl - 1
                    st[i] = DELIM
            elif s == DELIM or s == OVL_DELIM:
                if d:
                    if drem[i] <= 1:
                        st[i] = OVL_FLAG
                        flag[i] = FLAG_LENGTH
                    else:
                        st[i] = FLAG
                        flag[i] = FLAG_LENGTH
                        first[i] = True
                        defer[i] = False
                else:
                    drem[i] -= 1
                    if drem[i] <= 0:
                        st[i] = INTER
                        ipos[i] = 0
            elif s == OVL_FLAG:
                flag[i] -= 1
                if flag[i] <= 0:
                    st[i] = OVL_WAIT
            elif s == OVL_WAIT:
                if not d:
                    drem[i] = dl - 1
                    st[i] = OVL_DELIM
            elif s == INTER:
                if d:
                    if ipos[i] < INTERMISSION_LENGTH - 1:
                        st[i] = OVL_FLAG
                        flag[i] = FLAG_LENGTH
                    else:
                        return None  # un-orchestrated start of frame
                else:
                    ipos[i] += 1
                    if ipos[i] >= INTERMISSION_LENGTH:
                        st[i] = IDLE
            elif s == IDLE:
                if d:
                    return None  # reception outside the restart
            elif s == MAJ_FLAG:
                flag[i] -= 1
                if flag[i] <= 0:
                    st[i] = MAJ_QUIET
            elif s == MAJ_QUIET:
                clock = t - 2
                if samp[i] and ws <= clock <= we and d:
                    votes[i] += 1
                if clock >= we:
                    if samp[i]:
                        samp[i] = False
                        if votes[i] >= mm:
                            if i == 0:
                                pending = False
                            deliver[i] += 1
                    st[i] = WAIT
                    first[i] = False
                    defer[i] = False
            else:  # MAJ_EXT
                if t - 2 >= we:
                    st[i] = WAIT
                    first[i] = False
                    defer[i] = False
        t += 1
        # End of step: finished, or an orchestrated retransmission.
        if st[0] == IDLE:
            if not pending:
                if all(s == IDLE for s in st):
                    return tuple(deliver), attempts
            else:
                for j in range(1, n):
                    if st[j] != IDLE and not (
                        st[j] == INTER and ipos[j] == INTERMISSION_LENGTH - 1
                    ):
                        return None
                attempts += 1
                t = 0
                st = [TX_PROG] + [RX_PROG] * (n - 1)
                for j in range(n):
                    flag[j] = drem[j] = ipos[j] = votes[j] = 0
                    first[j] = defer[j] = samp[j] = False
    return None  # step budget exhausted


# ---------------------------------------------------------------------------
# Numpy batched micro-simulator: (batch, node) arrays, single passes
# ---------------------------------------------------------------------------


def _simulate_numpy(
    shape: TailShape,
    n_nodes: int,
    placements: Sequence[Sequence[Tuple[int, int]]],
) -> List[Optional[Tuple[Tuple[int, ...], int]]]:
    """Replay a batch of placements in lockstep array passes.

    Semantically identical to :func:`_simulate_scalar`; each loop
    iteration advances *every* live placement by one bus bit with
    whole-array operations.
    """
    assert np is not None
    batch = len(placements)
    if batch == 0:
        return []
    n = n_nodes
    eof = shape.eof_length
    last = eof - 1
    dl = shape.delimiter_length
    proto = shape.proto
    mm = shape.majority
    ws = shape.window_start
    we = shape.window_end
    quiet_base = 3 + eof

    armed = np.zeros((batch, n, shape.key_count), dtype=bool)
    max_flips = 0
    for b, pairs in enumerate(placements):
        max_flips = max(max_flips, len(pairs))
        for node, key in pairs:
            armed[b, node, key] = True

    st = np.full((batch, n), RX_PROG, dtype=np.int8)
    st[:, 0] = TX_PROG
    flag = np.zeros((batch, n), dtype=np.int16)
    drem = np.zeros((batch, n), dtype=np.int16)
    ipos = np.zeros((batch, n), dtype=np.int16)
    first = np.zeros((batch, n), dtype=bool)
    defer = np.zeros((batch, n), dtype=bool)
    samp = np.zeros((batch, n), dtype=bool)
    votes = np.zeros((batch, n), dtype=np.int16)
    deliver = np.zeros((batch, n), dtype=np.int32)
    pending = np.ones(batch, dtype=bool)
    attempts = np.ones(batch, dtype=np.int32)
    t = np.zeros(batch, dtype=np.int32)
    bail = np.zeros(batch, dtype=bool)
    done = np.zeros(batch, dtype=bool)

    cap = (max_flips + 2) * shape.attempt_cap + 16
    for _ in range(cap):
        act = ~(bail | done)
        if not act.any():
            break
        act_n = act[:, None]
        tt = t[:, None]
        # Drive phase.
        dominant_state = (
            (st == FLAG) | (st == OVL_FLAG) | (st == MAJ_FLAG) | (st == MAJ_EXT)
        )
        drives = dominant_state | ((st == RX_PROG) & (tt == 1))
        bus = (drives & act_n).any(axis=1)
        # Fault firing.
        prog = (st == TX_PROG) | (st == RX_PROG)
        key = np.where(prog & act_n, tt, -1)
        if proto == P_MAJOR:
            clock = tt - 2
            quiet = (st == MAJ_QUIET) & (clock >= 0) & (clock <= we) & act_n
            key = np.where(quiet, quiet_base + clock, key)
        b_idx, n_idx = np.nonzero(key >= 0)
        k_idx = key[b_idx, n_idx]
        fired_flat = armed[b_idx, n_idx, k_idx]
        armed[b_idx, n_idx, k_idx] = False
        fired = np.zeros((batch, n), dtype=bool)
        fired[b_idx, n_idx] = fired_flat
        seen = bus[:, None] ^ fired
        # Bit phase: masks from the state snapshot are disjoint per node.
        stv = st.copy()
        m_tx = (stv == TX_PROG) & act_n
        m_rx = (stv == RX_PROG) & act_n
        m_prog = m_tx | m_rx
        pre = m_prog & (tt < 3)
        tail_err = (pre & (tt != 1) & seen) | (m_tx & (tt == 1) & ~seen)
        m_eof = m_prog & (tt >= 3)
        index = tt - 3
        plain = np.zeros((batch, n), dtype=bool)
        to_defer = np.zeros((batch, n), dtype=bool)
        to_ovl = np.zeros((batch, n), dtype=bool)
        maj_flag_entry = np.zeros((batch, n), dtype=bool)
        maj_ext_entry = np.zeros((batch, n), dtype=bool)
        finish = np.zeros((batch, n), dtype=bool)
        if proto == P_CAN:
            plain |= (m_tx & m_eof & seen) | (m_rx & m_eof & seen & (index < last))
            deliver[m_rx & m_eof & ~seen & (index == last - 1)] += 1
            to_ovl |= m_rx & m_eof & seen & (index == last)
            finish |= m_eof & ~seen & (index == last)
            # CAN receivers already delivered at the last-but-one bit.
            succeed = m_tx & m_eof & ~seen & (index == last)
        elif proto == P_MINOR:
            plain |= m_eof & seen & (index < last)
            to_defer |= m_eof & seen & (index == last)
            finish |= m_eof & ~seen & (index == last)
            succeed = finish
        else:
            maj_err = m_eof & seen
            maj_flag_entry |= maj_err & (index + 1 <= mm)
            maj_ext_entry |= maj_err & (index + 1 > mm)
            finish |= m_eof & ~seen & (index == last)
            succeed = finish
        if proto == P_MAJOR:
            maj_tail_entry = tail_err
        else:
            maj_tail_entry = None
            plain |= tail_err
        # FLAG
        m = (stv == FLAG) & act_n
        flag[m] -= 1
        st[m & (flag <= 0)] = WAIT
        # WAIT
        m = (stv == WAIT) & act_n
        fb = m & first
        first[fb] = False
        resolved = fb & defer
        defer[resolved] = False
        accepted = resolved & seen
        deliver[accepted] += 1
        pending[accepted[:, 0]] = False
        to_delim = m & ~seen
        st[to_delim] = DELIM
        drem[to_delim] = dl - 1
        # DELIM / OVL_DELIM
        for state_from in (DELIM, OVL_DELIM):
            m = (stv == state_from) & act_n
            dominant = m & seen
            to_ovl |= dominant & (drem <= 1)
            plain |= dominant & (drem > 1)
            recessive = m & ~seen
            drem[recessive] -= 1
            to_inter = recessive & (drem <= 0)
            st[to_inter] = INTER
            ipos[to_inter] = 0
        # OVL_FLAG
        m = (stv == OVL_FLAG) & act_n
        flag[m] -= 1
        st[m & (flag <= 0)] = OVL_WAIT
        # OVL_WAIT
        m = (stv == OVL_WAIT) & act_n & ~seen
        st[m] = OVL_DELIM
        drem[m] = dl - 1
        # INTER
        m = (stv == INTER) & act_n
        dominant = m & seen
        to_ovl |= dominant & (ipos < INTERMISSION_LENGTH - 1)
        bail |= (dominant & (ipos >= INTERMISSION_LENGTH - 1)).any(axis=1)
        recessive = m & ~seen
        ipos[recessive] += 1
        st[recessive & (ipos >= INTERMISSION_LENGTH)] = IDLE
        # IDLE
        bail |= ((stv == IDLE) & act_n & seen).any(axis=1)
        # MAJ states
        if proto == P_MAJOR:
            m = (stv == MAJ_FLAG) & act_n
            flag[m] -= 1
            st[m & (flag <= 0)] = MAJ_QUIET
            m = (stv == MAJ_QUIET) & act_n
            clock = tt - 2
            votes[m & samp & (clock >= ws) & (clock <= we) & seen] += 1
            exiting = m & (clock >= we)
            verdict = exiting & samp
            samp[verdict] = False
            accepted = verdict & (votes >= mm)
            deliver[accepted] += 1
            pending[accepted[:, 0]] = False
            st[exiting] = WAIT
            first[exiting] = False
            defer[exiting] = False
            ext = (stv == MAJ_EXT) & act_n & (tt - 2 >= we)
            st[ext] = WAIT
            first[ext] = False
            defer[ext] = False
        # Apply the PROG-derived entries last (masks are disjoint from
        # the epilogue-state masks above — a node is in one state).
        st[plain] = FLAG
        flag[plain] = FLAG_LENGTH
        first[plain] = True
        defer[plain] = False
        st[to_defer] = FLAG
        flag[to_defer] = FLAG_LENGTH
        first[to_defer] = True
        defer[to_defer] = True
        st[to_ovl] = OVL_FLAG
        flag[to_ovl] = FLAG_LENGTH
        if maj_tail_entry is not None:
            st[maj_tail_entry] = MAJ_FLAG
            flag[maj_tail_entry] = FLAG_LENGTH
            samp[maj_tail_entry] = False
        if proto == P_MAJOR:
            st[maj_flag_entry] = MAJ_FLAG
            flag[maj_flag_entry] = FLAG_LENGTH
            samp[maj_flag_entry] = True
            votes[maj_flag_entry] = 0
            deliver[maj_ext_entry] += 1
            pending[maj_ext_entry[:, 0]] = False
            st[maj_ext_entry] = MAJ_EXT
        deliver[succeed] += 1
        pending[succeed[:, 0]] = False
        st[finish] = INTER
        ipos[finish] = 0
        t = np.where(act, t + 1, t)
        # End of step: completion and orchestrated restarts.
        tx_idle = act & (st[:, 0] == IDLE)
        all_idle = (st == IDLE).all(axis=1)
        done |= tx_idle & all_idle & ~pending
        restart = tx_idle & pending & ~done & ~bail
        if restart.any():
            ready = (st == IDLE) | ((st == INTER) & (ipos == INTERMISSION_LENGTH - 1))
            ok = restart & ready[:, 1:].all(axis=1)
            bail |= restart & ~ok
            if ok.any():
                attempts[ok] += 1
                t[ok] = 0
                st[ok, :] = RX_PROG
                st[ok, 0] = TX_PROG
                flag[ok, :] = 0
                drem[ok, :] = 0
                ipos[ok, :] = 0
                votes[ok, :] = 0
                first[ok, :] = False
                defer[ok, :] = False
                samp[ok, :] = False
    bail |= ~(done | bail)  # step budget exhausted
    results: List[Optional[Tuple[Tuple[int, ...], int]]] = []
    for b in range(batch):
        if bail[b]:
            results.append(None)
        else:
            results.append((tuple(int(x) for x in deliver[b]), int(attempts[b])))
    return results
