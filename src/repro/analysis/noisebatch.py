"""Draw-order-preserving vectorised noise scans (ISSUE 10 tentpole).

The engine's :class:`repro.faults.bit_errors.RandomViewErrorInjector`
consumes exactly one uniform draw per noise-eligible node per bus bit,
in a fixed order (the engine's per-tick node loop).  That makes a whole
window's — or campaign round's — noise realisation a *prefix* of the
generator stream whose length is known in advance from the fault-free
timeline: ``bits * draw_width`` draws, where ``draw_width`` is the
number of nodes the injector actually draws for.

This module materialises that prefix in large generator calls and
thresholds it against the BER, so the batch backends can answer the
only question that matters cheaply — *where is the first flip?* — and
dispatch:

* no flip → the realisation **is** the fault-free timeline, already
  solved in closed form (the PR 9 window memo, the PR 6 combo cache);
* a flip at draw ``i`` → the engine re-enters at tick
  ``i // draw_width`` with the generator rewound (``generator_state`` /
  ``restore_state``) or fast-forwarded (``advance``) to the exact same
  stream position, so the cascade is bit-identical to a full engine
  run at the same seed.

numpy's ``Generator.random(k)`` fills from the same PCG64 stream as
``k`` scalar ``.random()`` calls (the invariant the Monte-Carlo tail
chunk already relies on), so the vector scan preserves the engine's
draw order exactly.  numpy ships with the ``repro[fast]`` extra; a
scalar fallback keeps the scan correct (just not vectorised) for any
generator exposing ``.random()``.
"""

from __future__ import annotations

from typing import Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by numpy-less installs
    np = None

#: Draws per vectorised scan call: large enough to amortise the call,
#: small enough that a hit early in a long window wastes little work.
SCAN_CHUNK = 65536


def _vector_generator(rng) -> bool:
    """Whether ``rng`` supports numpy's vectorised ``random(k)``."""
    return np is not None and isinstance(rng, np.random.Generator)


def first_flip(rng, total: int, ber: float, chunk: int = SCAN_CHUNK) -> Optional[int]:
    """Index of the first draw in the next ``total`` that is ``< ber``.

    Consumes draws from ``rng`` in the engine's order and returns the
    stream-relative index of the first flip, or ``None`` when the whole
    prefix is flip-free.  On a hit the generator has overshot to the
    end of the containing chunk — rewind with ``restore_state`` before
    handing the stream to an engine run.
    """
    if total <= 0:
        return None
    if not _vector_generator(rng):
        for index in range(total):
            if rng.random() < ber:
                return index
        return None
    offset = 0
    while offset < total:
        draws = rng.random(min(chunk, total - offset))
        hits = np.nonzero(draws < ber)[0]
        if hits.size:
            return offset + int(hits[0])
        offset += draws.size
    return None


def advance(rng, draws: int, chunk: int = SCAN_CHUNK) -> None:
    """Discard the next ``draws`` uniforms from ``rng``.

    Positions the stream exactly where the engine's injector would be
    after ``draws`` scalar calls, so a resumed engine continues the
    same realisation the scan classified.
    """
    if draws <= 0:
        return
    if not _vector_generator(rng):
        for _ in range(draws):
            rng.random()
        return
    remaining = draws
    while remaining:
        step = min(chunk, remaining)
        rng.random(step)
        remaining -= step


def generator_state(rng):
    """Snapshot of ``rng``'s stream position (opaque; see ``restore_state``)."""
    bit_generator = getattr(rng, "bit_generator", None)
    if bit_generator is not None:
        return ("bit_generator", bit_generator.state)
    getstate = getattr(rng, "getstate", None)
    if getstate is not None:
        return ("getstate", getstate())
    raise TypeError("cannot snapshot generator %r" % (rng,))


def restore_state(rng, state) -> None:
    """Rewind ``rng`` to a ``generator_state`` snapshot, in place.

    Restores the *same object* rather than re-creating it: campaign
    child seeds may be shared ``np.random.Generator`` instances, so the
    engine fallback must consume the original stream object from the
    restored position, exactly like the pure engine path.
    """
    kind, payload = state
    if kind == "bit_generator":
        rng.bit_generator.state = payload
        return
    if kind == "getstate":
        rng.setstate(payload)
        return
    raise TypeError("unknown generator state %r" % (kind,))
