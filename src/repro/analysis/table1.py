"""Reproduction of Table 1: probabilities of the scenarios.

The table has three columns for each bit error rate:

* ``IMOnew/hour`` — the paper's new scenario (Fig. 3a), equation 4;
* ``IMO/hour`` — the values Rufino et al. obtained for the old
  scenario (Fig. 1c) *with their own model*; the paper quotes their
  published maxima, and so do we (reference constants);
* ``IMO*/hour`` — the old scenario re-derived in the paper's ber*
  model, equation 5, which closely reproduces the Rufino values and
  thereby legitimates comparing the two scenario families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.probability import (
    p_new_scenario_per_frame,
    p_old_scenario_per_frame,
)
from repro.analysis.rates import incidents_per_hour
from repro.faults.models import TABLE1_BER_VALUES
from repro.workload.profiles import PAPER_PROFILE, NetworkProfile

#: The values published in Table 1 of the paper, used as the reference
#: the reproduction is compared against (EXPERIMENTS.md).
PAPER_TABLE1: Dict[float, Dict[str, float]] = {
    1e-4: {"imo_new": 8.80e-3, "imo_rufino": 3.94e-6, "imo_star": 3.92e-6},
    1e-5: {"imo_new": 8.91e-5, "imo_rufino": 3.98e-7, "imo_star": 3.96e-7},
    1e-6: {"imo_new": 8.92e-7, "imo_rufino": 3.98e-8, "imo_star": 3.96e-8},
}

#: Rufino et al.'s own published maxima for the Fig. 1c scenario
#: (their model, reproduced in the paper's middle column).
RUFINO_IMO_PER_HOUR: Dict[float, float] = {
    ber: row["imo_rufino"] for ber, row in PAPER_TABLE1.items()
}


@dataclass(frozen=True)
class Table1Row:
    """One row of the reproduced Table 1."""

    ber: float
    imo_new_per_hour: float
    imo_rufino_per_hour: float
    imo_star_per_hour: float

    def paper_row(self) -> Dict[str, float]:
        """The corresponding row published in the paper, if tabulated."""
        return PAPER_TABLE1.get(self.ber, {})


def generate_table1(
    profile: NetworkProfile = PAPER_PROFILE,
    ber_values: Sequence[float] = TABLE1_BER_VALUES,
) -> List[Table1Row]:
    """Compute the three Table 1 columns for each bit error rate."""
    rows = []
    for ber in ber_values:
        p_new = p_new_scenario_per_frame(ber, profile.n_nodes, profile.frame_bits)
        p_star = p_old_scenario_per_frame(ber, profile.n_nodes, profile.frame_bits)
        rows.append(
            Table1Row(
                ber=ber,
                imo_new_per_hour=incidents_per_hour(p_new, profile),
                imo_rufino_per_hour=RUFINO_IMO_PER_HOUR.get(ber, float("nan")),
                imo_star_per_hour=incidents_per_hour(p_star, profile),
            )
        )
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Format rows the way the paper prints Table 1."""
    lines = [
        "ber        IMOnew/hour     IMO/hour        IMO*/hour",
        "           (Fig. 3a)       (Fig. 1c)       (Fig. 1c)",
        "-" * 58,
    ]
    for row in rows:
        lines.append(
            "%-10.0e %-15.2e %-15.2e %-15.2e"
            % (
                row.ber,
                row.imo_new_per_hour,
                row.imo_rufino_per_hour,
                row.imo_star_per_hour,
            )
        )
    return "\n".join(lines)


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / reference (inf when reference is 0)."""
    if reference == 0.0:
        return float("inf")
    return abs(measured - reference) / abs(reference)
