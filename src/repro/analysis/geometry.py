"""The MajorCAN frame-end geometry, derived and checked.

Section 5 derives each constant of MajorCAN_m from worst-case error
budgets.  This module restates that derivation as executable
invariants, so the geometry embedded in
:class:`~repro.core.majorcan.MajorCanController` can never silently
drift from the design argument:

* a node whose error flag starts at the first EOF bit (CRC class) must
  never be first detected inside the second sub-field, even when
  ``m - 1`` errors delay its detection — hence the first sub-field has
  **m bits**;
* the first detector may sit at bit ``m``; with ``m - 1`` delaying
  errors the second node detects at bit ``2m`` at the latest and must
  still be inside the acceptance region — hence the second sub-field
  also has **m bits**;
* with a single error, the notifier's regular 6-bit flag would end at
  bit ``m + 7`` — the first sampled bit; ``m - 1`` further errors can
  corrupt samples, so the sampler needs ``2m - 1`` samples with
  majority ``m``, placing the last sample (and the extended-flag end)
  at bit ``3m + 5``;
* the error delimiter must mirror the frame tail (ACK delimiter +
  EOF = ``2m + 1`` recessive bits) for resynchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.majorcan import MajorCanController
from repro.errors import AnalysisError


@dataclass(frozen=True)
class GeometryCheck:
    """One named invariant of the frame-end geometry."""

    name: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        return "%-42s %s  (%s)" % (self.name, "ok" if self.holds else "FAIL", self.detail)


def derive_geometry(m: int) -> dict:
    """The Section 5 constants as functions of m."""
    if m < 3:
        raise AnalysisError("MajorCAN needs m >= 3")
    return {
        "first_subfield_bits": m,
        "second_subfield_bits": m,
        "eof_bits": 2 * m,
        "window_start": m + 7,
        "window_end": 3 * m + 5,
        "window_samples": 2 * m - 1,
        "majority": m,
        "delimiter_bits": 2 * m + 1,
        "frame_tail_recessive_bits": 1 + 2 * m,  # ACK delimiter + EOF
    }


def verify_geometry(m: int) -> List[GeometryCheck]:
    """Check the implementation and the design argument for one m."""
    derived = derive_geometry(m)
    node = MajorCanController("probe", m=m)
    checks = [
        GeometryCheck(
            "implementation matches derived EOF length",
            node.config.eof_length == derived["eof_bits"],
            "eof=%d" % node.config.eof_length,
        ),
        GeometryCheck(
            "implementation matches derived window",
            (node.window_start, node.window_end)
            == (derived["window_start"], derived["window_end"]),
            "window=[%d, %d]" % (node.window_start, node.window_end),
        ),
        GeometryCheck(
            "implementation matches derived majority",
            node.majority == derived["majority"],
            "majority=%d of %d" % (node.majority, derived["window_samples"]),
        ),
        GeometryCheck(
            "delimiter mirrors the frame tail",
            node.config.delimiter_length == derived["frame_tail_recessive_bits"],
            "delimiter=%d" % node.config.delimiter_length,
        ),
        # --- the worst-case error-budget arguments themselves ---
        GeometryCheck(
            "CRC-class flag cannot reach the second sub-field",
            # Flag starts at EOF bit 1; detection delayed by at most
            # m-1 errors lands at bit 1 + (m-1) = m <= first sub-field.
            1 + (m - 1) <= derived["first_subfield_bits"],
            "worst detection at bit %d" % (1 + (m - 1)),
        ),
        GeometryCheck(
            "worst-delayed second detector stays in sub-field 2",
            # First detector at bit m; second sees the flag at m+1,
            # delayed by up to m-1 errors: bit 2m at the latest.
            (m + 1) + (m - 1) <= derived["eof_bits"],
            "worst detection at bit %d" % ((m + 1) + (m - 1)),
        ),
        GeometryCheck(
            "window starts where a regular flag would end",
            # Detection at m+1 -> 6-bit flag over bits m+2 .. m+7.
            derived["window_start"] == (m + 1) + 6,
            "first sample at bit %d" % derived["window_start"],
        ),
        GeometryCheck(
            "window tolerates m-1 corrupted samples",
            derived["window_samples"] - (m - 1) >= derived["majority"],
            "%d samples, %d corruptible" % (derived["window_samples"], m - 1),
        ),
        GeometryCheck(
            "latest extender still covers its own notification",
            # Acceptance detected at bit 2m -> extended flag starts at
            # 2m+1, which must not pass the window end.
            2 * m + 1 <= derived["window_end"],
            "latest flag start at bit %d" % (2 * m + 1),
        ),
        GeometryCheck(
            "earliest extender covers the whole window",
            # Acceptance detected at bit m+1 -> flag from m+2 onwards
            # covers every sampled bit.
            m + 2 <= derived["window_start"],
            "earliest flag start at bit %d" % (m + 2),
        ),
        # --- the finding-F1 arithmetic (see EXPERIMENTS.md) ---
        GeometryCheck(
            "desync channel closed (flag at ACK+6 in sub-field 1)",
            # A desynchronised receiver's stuff violation arrives six
            # bits after the dominant ACK slot: flag at EOF bit 6.
            6 <= derived["first_subfield_bits"],
            "flag at EOF bit 6 vs first sub-field of %d"
            % derived["first_subfield_bits"],
        ),
    ]
    return checks


def geometry_report(m: int) -> str:
    """Human-readable geometry report for one m."""
    lines = ["MajorCAN_%d frame-end geometry:" % m]
    for key, value in derive_geometry(m).items():
        lines.append("  %-28s %d" % (key, value))
    lines.append("invariants:")
    for check in verify_geometry(m):
        lines.append("  " + str(check))
    return "\n".join(lines)
