"""The residual failure rate of MajorCAN_m.

The paper guarantees Atomic Broadcast "in the presence of up to m
randomly distributed errors per frame" — so the honest question for a
deployment is: *how often do more than m errors strike one frame?*
This module brackets that residual rate under the paper's own spatial
error model (each of N nodes flips each bit's view independently with
``ber* = ber/N``):

* an **upper bound** counts any frame with more than m view errors
  anywhere (pessimistic: most such patterns — e.g. all errors
  mid-frame — still resolve consistently via ordinary retransmission);
* a **tail-window bound** counts only frames with more than m errors
  inside the agreement-critical region (the frame tail plus the
  sampling window), which is where consistency is actually decided.

The punchline, reproduced by the tests and the benchmark: with the
paper's proposal m = 5, the residual stays below the 1e-9/hour target
for ber <= 1e-5, but the *upper bound* exceeds it at the aggressive
ber = 1e-4 — choosing m is genuinely a function of the environment,
exactly as Section 5 remarks ("if ber is larger then larger values of
m should be considered").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

#: Lazily-resolved ``scipy.stats`` (``False`` = not yet attempted).
#: scipy takes ~2s to import; deferring it keeps ``repro.analysis`` —
#: whose ``noisebatch`` sits on the hot noisy-traffic path — cheap to
#: import for workers that never touch the residual-rate tables.
_stats = False


def _scipy_stats():
    global _stats
    if _stats is False:
        try:
            from scipy import stats as scipy_stats

            _stats = scipy_stats
        except ImportError:  # pragma: no cover - numpy-less installs
            _stats = None
    return _stats

from repro.analysis.rates import incidents_per_hour
from repro.errors import AnalysisError
from repro.faults.models import ber_star
from repro.workload.profiles import PAPER_PROFILE, NetworkProfile


def p_more_than_m_errors(
    ber: float,
    m: int,
    n_nodes: int,
    exposed_bits: int,
) -> float:
    """P{more than m view errors among N * exposed_bits sites}."""
    if m < 0:
        raise AnalysisError("m must be non-negative")
    if exposed_bits < 1:
        raise AnalysisError("at least one exposed bit required")
    b = ber_star(ber, n_nodes)
    sites = n_nodes * exposed_bits
    # Survival function: P(X > m) for X ~ Binomial(sites, b).
    stats = _scipy_stats()
    if stats is not None:
        return float(stats.binom.sf(m, sites, b))
    return _binom_sf(m, sites, b)


def _binom_sf(m: int, n: int, p: float) -> float:
    """P(X > m) for X ~ Binomial(n, p), summed from the tail upward.

    Pure-python stand-in for ``scipy.stats.binom.sf`` when scipy (and
    therefore numpy) is absent.  Summing the upper tail directly avoids
    the catastrophic cancellation of ``1 - cdf`` at the tiny
    probabilities this module works with; terms past the mode decay
    geometrically, so truncation once a term stops contributing keeps
    the sum exact to double precision.
    """
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0 if m < n else 0.0
    total = 0.0
    for k in range(m + 1, n + 1):
        term = math.comb(n, k) * (p**k) * ((1.0 - p) ** (n - k))
        total += term
        if term < total * 1e-18 and k > n * p:
            break
    return min(1.0, total)


def residual_rate_upper_bound(
    ber: float,
    m: int,
    profile: NetworkProfile = PAPER_PROFILE,
) -> float:
    """Residual incidents/hour counting any frame with > m errors.

    Exposure: every bit of the frame plus the MajorCAN agreement
    window (EOF-relative bits up to 3m+5).
    """
    exposed = profile.frame_bits + (3 * m + 5)
    per_frame = p_more_than_m_errors(ber, m, profile.n_nodes, exposed)
    return incidents_per_hour(per_frame, profile)


def residual_rate_tail_bound(
    ber: float,
    m: int,
    profile: NetworkProfile = PAPER_PROFILE,
) -> float:
    """Residual incidents/hour counting > m errors in the tail region.

    Exposure: the agreement-critical bits only — the ACK field, the 2m
    EOF bits and the sampling window through bit 3m+5 (a further ~3
    bits of delimiter margin included).
    """
    exposed = 2 + (3 * m + 5) + 3
    per_frame = p_more_than_m_errors(ber, m, profile.n_nodes, exposed)
    return incidents_per_hour(per_frame, profile)


@dataclass(frozen=True)
class ResidualRow:
    """Residual-rate bracket for one (ber, m) pair."""

    ber: float
    m: int
    upper_bound_per_hour: float
    tail_bound_per_hour: float
    meets_target_upper: bool
    meets_target_tail: bool


def residual_table(
    ber_values: Sequence[float] = (1e-4, 1e-5, 1e-6),
    m_values: Sequence[int] = (3, 5, 7),
    target: float = 1e-9,
    profile: NetworkProfile = PAPER_PROFILE,
) -> List[ResidualRow]:
    """Residual-rate bracket over a (ber, m) grid."""
    rows = []
    for ber in ber_values:
        for m in m_values:
            upper = residual_rate_upper_bound(ber, m, profile)
            tail = residual_rate_tail_bound(ber, m, profile)
            rows.append(
                ResidualRow(
                    ber=ber,
                    m=m,
                    upper_bound_per_hour=upper,
                    tail_bound_per_hour=tail,
                    meets_target_upper=upper <= target,
                    meets_target_tail=tail <= target,
                )
            )
    return rows


def smallest_m_meeting_target(
    ber: float,
    target: float = 1e-9,
    profile: NetworkProfile = PAPER_PROFILE,
    use_upper_bound: bool = True,
    max_m: int = 32,
) -> int:
    """The smallest m whose residual rate meets a dependability target.

    This is the design rule the paper sketches in Section 5 ("this
    decision strongly depends on the ber value"), made computable.
    """
    bound = residual_rate_upper_bound if use_upper_bound else residual_rate_tail_bound
    for m in range(3, max_m + 1):
        if bound(ber, m, profile) <= target:
            return m
    raise AnalysisError(
        "no m up to %d meets %.1e/hour at ber %.1e" % (max_m, target, ber)
    )
