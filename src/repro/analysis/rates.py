"""Converting per-frame probabilities into incidents per hour.

The paper reports Table 1 as incidents/hour: the per-frame scenario
probability multiplied by the number of frames the network transfers in
an hour under the evaluation profile.
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.workload.profiles import NetworkProfile


def incidents_per_hour(p_per_frame: float, profile: NetworkProfile) -> float:
    """Scale a per-frame probability by the hourly frame count."""
    if p_per_frame < 0.0 or p_per_frame > 1.0:
        raise AnalysisError("per-frame probability out of range: %r" % p_per_frame)
    return p_per_frame * profile.frames_per_hour


def hours_between_incidents(p_per_frame: float, profile: NetworkProfile) -> float:
    """Mean time between incidents, in hours (inf when impossible)."""
    rate = incidents_per_hour(p_per_frame, profile)
    if rate == 0.0:
        return float("inf")
    return 1.0 / rate


def meets_reference(rate_per_hour: float, reference: float = 1e-9) -> bool:
    """Whether an incident rate meets a dependability target.

    The paper's yardstick is the aerospace safety number of 1e-9
    incidents/hour, being adopted by the automotive industry as well.
    """
    return rate_per_hour <= reference
