"""Plain-text report rendering.

Every experiment in the benchmark suite ends by printing the rows the
paper reports (or the executable analogue of a figure); these helpers
keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "%.3g",
) -> str:
    """Render dict rows as an aligned, pipe-free text table."""
    if not rows:
        return title + "\n(no rows)" if title else "(no rows)"
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format % value)
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(column), max(len(row[i]) for row in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(column.ljust(widths[i]) for i, column in enumerate(columns)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_kv(title: str, pairs: Sequence[tuple]) -> str:
    """Render key/value pairs under a heading."""
    width = max((len(str(key)) for key, _ in pairs), default=0)
    lines = [title]
    for key, value in pairs:
        lines.append("  %-*s : %s" % (width, key, value))
    return "\n".join(lines)
