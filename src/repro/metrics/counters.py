"""Aggregation of consistency statistics across many runs.

The CAN6/CAN6' properties are statements about rates ("in a known time
interval, inconsistent omission failures may occur in at most j
transmissions"); measuring them requires aggregating the per-message
classification of :func:`repro.properties.can_properties.classify_omissions`
over whole fault-injection campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.faults.scenarios import ScenarioOutcome
from repro.properties.can_properties import classify_omissions
from repro.properties.ledger import SystemLedger


@dataclass
class ConsistencyCounter:
    """Counts per-message outcomes over many executions."""

    messages: int = 0
    consistent: int = 0
    inconsistent_omissions: int = 0
    double_receptions: int = 0
    never_delivered: int = 0

    def add_ledger(self, ledger: SystemLedger) -> None:
        """Classify and accumulate one execution's ledger."""
        classification = classify_omissions(ledger)
        self.messages += (
            len(classification.consistent)
            + len(classification.inconsistent_omissions)
            + len(classification.never_delivered)
        )
        self.consistent += len(classification.consistent)
        self.inconsistent_omissions += len(classification.inconsistent_omissions)
        self.double_receptions += len(classification.duplicates)
        self.never_delivered += len(classification.never_delivered)

    def add_outcome(self, outcome: ScenarioOutcome) -> None:
        """Accumulate one single-frame scenario outcome."""
        self.messages += 1
        if outcome.inconsistent_omission:
            self.inconsistent_omissions += 1
        elif outcome.consistent:
            self.consistent += 1
        if outcome.double_reception:
            self.double_receptions += 1

    @property
    def imo_rate(self) -> float:
        """Inconsistent-omission fraction of all classified messages."""
        return self.inconsistent_omissions / self.messages if self.messages else 0.0

    def merge(self, other: "ConsistencyCounter") -> "ConsistencyCounter":
        """Combine two counters (e.g. from parallel campaigns)."""
        return ConsistencyCounter(
            messages=self.messages + other.messages,
            consistent=self.consistent + other.consistent,
            inconsistent_omissions=self.inconsistent_omissions
            + other.inconsistent_omissions,
            double_receptions=self.double_receptions + other.double_receptions,
            never_delivered=self.never_delivered + other.never_delivered,
        )


@dataclass
class CampaignResult:
    """Result of running the same experiment across protocols."""

    label: str
    counters: Dict[str, ConsistencyCounter] = field(default_factory=dict)

    def counter(self, protocol: str) -> ConsistencyCounter:
        return self.counters.setdefault(protocol, ConsistencyCounter())

    def rows(self) -> List[Dict[str, object]]:
        """Tabular summary, one row per protocol."""
        out = []
        for protocol in sorted(self.counters):
            counter = self.counters[protocol]
            out.append(
                {
                    "protocol": protocol,
                    "messages": counter.messages,
                    "consistent": counter.consistent,
                    "imo": counter.inconsistent_omissions,
                    "double": counter.double_receptions,
                    "imo_rate": counter.imo_rate,
                }
            )
        return out
