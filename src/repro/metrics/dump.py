"""candump-style rendering of frame traffic.

Formats deliveries and transmissions in the familiar SocketCAN
``candump`` layout (``  bus  ID   [DLC]  DD DD ...``) so traces from
this simulator read like real captures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.can.controller import CanController
from repro.can.events import Delivery
from repro.can.frame import Frame


def format_frame(frame: Frame, bus: str = "can0") -> str:
    """One frame in candump notation."""
    if frame.can_id.extended:
        identifier = "%08X" % frame.can_id.value
    else:
        identifier = "%03X" % frame.can_id.value
    if frame.remote:
        body = "remote request"
    else:
        body = " ".join("%02X" % byte for byte in frame.data) or "--"
    return "  %s  %s   [%d]  %s" % (bus, identifier, frame.dlc, body)


def format_delivery(delivery: Delivery, bus: str = "can0") -> str:
    """One delivery with its bit-time stamp."""
    return "(%08d) %s" % (delivery.time, format_frame(delivery.frame, bus=bus))


def dump_deliveries(
    deliveries: Iterable[Delivery],
    bus: str = "can0",
) -> str:
    """Render a delivery sequence as a candump-style log."""
    return "\n".join(format_delivery(delivery, bus=bus) for delivery in deliveries)


def dump_node(controller: CanController, bus: str = "can0") -> str:
    """Render everything one controller delivered."""
    return dump_deliveries(controller.deliveries, bus=bus)


def merged_bus_log(controllers: Sequence[CanController], bus: str = "can0") -> str:
    """A single time-ordered log of first deliveries on the bus.

    Each successful frame appears once, at the time the first receiver
    delivered it — effectively what a passive candump tap would show.
    """
    seen = set()
    entries: List[Delivery] = []
    for controller in controllers:
        for delivery in controller.deliveries:
            key = (delivery.time, delivery.wire_key())
            if key in seen:
                continue
            seen.add(key)
            entries.append(delivery)
    entries.sort(key=lambda delivery: delivery.time)
    return dump_deliveries(entries, bus=bus)
