"""Exporting experiment results to CSV and JSON.

Downstream users typically want the reproduced tables as data, not
text; these helpers serialise any list of dict-shaped rows (as
produced by the sweeps, campaigns, Table 1 and the property matrices)
losslessly and deterministically.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError


def _normalise_row(row: Any) -> Dict[str, Any]:
    if is_dataclass(row) and not isinstance(row, type):
        return asdict(row)
    if isinstance(row, dict):
        return dict(row)
    raise ReproError("rows must be dicts or dataclasses, got %r" % type(row))


def normalise_value(value: Any) -> Any:
    """Map ``value`` to a JSON-representable equivalent, recursively.

    Bytes become hex strings, infinities become strings, tuples become
    lists, dict keys become strings, and dataclass instances become
    dicts.  This is the single normalisation used by every JSON/CSV/
    JSONL emitter in the package (exports and the trace store alike).
    """
    if isinstance(value, float) and value in (float("inf"), float("-inf")):
        return str(value)
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [normalise_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): normalise_value(val) for key, val in value.items()}
    if is_dataclass(value) and not isinstance(value, type):
        return {key: normalise_value(val) for key, val in asdict(value).items()}
    return value


#: Backwards-compatible private alias (pre trace-store name).
_normalise_value = normalise_value


def json_line(record: Any) -> str:
    """Serialise one record as a compact, deterministic JSON line.

    The record is :func:`normalise_value`-normalised first; keys are
    sorted and separators minimal, so equal records always produce
    byte-identical lines — the property the trace-store diffs and the
    golden corpus rely on.
    """
    return json.dumps(normalise_value(record), sort_keys=True, separators=(",", ":"))


def write_jsonl(path_or_handle: Any, records: Iterable[Any]) -> int:
    """Stream ``records`` to a file as JSON Lines; returns the count.

    Accepts a path or an open text handle.  Each record is emitted with
    :func:`json_line`, so the output is deterministic line by line.
    """
    count = 0
    if hasattr(path_or_handle, "write"):
        for record in records:
            path_or_handle.write(json_line(record) + "\n")
            count += 1
        return count
    with open(path_or_handle, "w") as handle:
        for record in records:
            handle.write(json_line(record) + "\n")
            count += 1
    return count


def read_jsonl(path_or_handle: Any) -> List[Dict[str, Any]]:
    """Load a JSON Lines file written by :func:`write_jsonl`."""
    if hasattr(path_or_handle, "read"):
        lines = path_or_handle.read().splitlines()
    else:
        with open(path_or_handle) as handle:
            lines = handle.read().splitlines()
    records = []
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            raise ReproError("invalid JSONL at line %d: %s" % (number, exc))
    return records


def rows_to_json(rows: Sequence[Any], indent: int = 2) -> str:
    """Serialise rows to a deterministic JSON array."""
    payload = [
        {key: _normalise_value(value) for key, value in _normalise_row(row).items()}
        for row in rows
    ]
    return json.dumps(payload, indent=indent, sort_keys=True)


def rows_to_csv(rows: Sequence[Any], columns: Optional[Sequence[str]] = None) -> str:
    """Serialise rows to CSV.

    ``columns`` fixes the column set and order; by default the union of
    all row keys is used, in first-seen order.
    """
    normalised = [_normalise_row(row) for row in rows]
    if columns is None:
        columns = []
        for row in normalised:
            for key in row:
                if key not in columns:
                    columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in normalised:
        writer.writerow(
            {key: _flatten_for_csv(row.get(key, "")) for key in columns}
        )
    return buffer.getvalue()


def _flatten_for_csv(value: Any) -> Any:
    value = _normalise_value(value)
    if isinstance(value, (list, dict)):
        return json.dumps(value, sort_keys=True)
    return value


def write_rows(
    path: str,
    rows: Sequence[Any],
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write rows to ``path``; the extension selects CSV or JSON."""
    if path.endswith(".json"):
        text = rows_to_json(rows)
    elif path.endswith(".csv"):
        text = rows_to_csv(rows, columns=columns)
    else:
        raise ReproError("unsupported export extension for %r" % path)
    with open(path, "w") as handle:
        handle.write(text)
