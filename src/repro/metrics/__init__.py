"""Result aggregation, reporting, export and frame-log rendering."""

from repro.metrics.counters import CampaignResult, ConsistencyCounter
from repro.metrics.dump import (
    dump_deliveries,
    dump_node,
    format_delivery,
    format_frame,
    merged_bus_log,
)
from repro.metrics.export import (
    json_line,
    normalise_value,
    read_jsonl,
    rows_to_csv,
    rows_to_json,
    write_jsonl,
    write_rows,
)
from repro.metrics.report import render_kv, render_table

__all__ = [
    "CampaignResult",
    "ConsistencyCounter",
    "dump_deliveries",
    "dump_node",
    "format_delivery",
    "format_frame",
    "json_line",
    "merged_bus_log",
    "normalise_value",
    "read_jsonl",
    "render_kv",
    "render_table",
    "rows_to_csv",
    "rows_to_json",
    "write_jsonl",
    "write_rows",
]
