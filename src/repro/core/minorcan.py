"""The MinorCAN protocol (Section 3 of the paper).

MinorCAN changes only the processing of errors detected in the **last
bit of the end-of-frame field**:

* errors detected *before* the last EOF bit keep the standard CAN
  behaviour (reject / retransmit);
* errors detected *after* the last EOF bit keep the standard CAN
  behaviour (accept / do not retransmit, overload condition);
* for an error detected *in* the last EOF bit, both receivers and the
  transmitter apply the same criterion, built on the ``Primary_error``
  signal that the MAC sublayer exchanges with the fault confinement
  entity: a node that observes a dominant bit right after its own error
  flag ends was the *first* to signal (primary error) — nobody had
  rejected the frame before it, so it accepts / does not retransmit.
  A node whose flag ends into a recessive bus was reacting to someone
  else's flag — some node already rejected the frame — so it rejects /
  retransmits too.

If every node detects the error in the last bit simultaneously, none of
them sees a primary error and the frame is "unnecessarily but
consistently" rejected and retransmitted, exactly as the paper notes.

MinorCAN fixes the scenarios of Fig. 1 (double reception and the
inconsistent omissions of Rufino et al.) but is defeated by the new
scenarios of Fig. 3, where an additional disturbance masks the error
flag from the transmitter and its reactive *overload* flag fakes a
primary-error indication (see ``tests/test_scenarios_fig3.py``).
"""

from __future__ import annotations

from repro.can.bits import DOMINANT, Level
from repro.can.controller import CanController, STATE_INTERMISSION
from repro.can.events import ErrorReason


class MinorCanController(CanController):
    """A CAN controller implementing the MinorCAN last-bit rule.

    The deferral machinery lives in the base class
    (:meth:`CanController._resolve_deferred`): when a deferred error is
    pending, the first bit observed after the node's own error flag
    decides — dominant (primary error) means accept, recessive means
    reject.  This class only routes last-EOF-bit errors into it.

    The class overrides nothing but the ``_rx_eof_bit`` / ``_tx_eof_bit``
    extension points, which the table-driven fast path
    (``ControllerConfig.fast_path``) invokes with the same ``(index,
    seen)`` arguments as the reference state machine — MinorCAN
    therefore runs unchanged on either path.
    """

    protocol_name = "MinorCAN"

    def _rx_eof_bit(self, index: int, seen: Level) -> None:
        last = self.config.eof_length - 1
        if index < last:
            if seen is DOMINANT:
                self._enter_error(ErrorReason.EOF)
            # Unlike standard CAN, delivery is postponed to the end of
            # EOF: a dominant last bit may still lead to rejection.
            return
        if seen is DOMINANT:
            self._enter_error(ErrorReason.EOF_LAST_BIT, deferred=True)
            return
        self._deliver_received_frame()
        self._state = STATE_INTERMISSION
        self._intermission_pos = 0
        self.is_transmitter = False

    def _tx_eof_bit(self, index: int, seen: Level) -> bool:
        last = self.config.eof_length - 1
        if seen is not DOMINANT:
            return False
        if index == last:
            self._enter_error(ErrorReason.EOF_LAST_BIT, deferred=True)
        else:
            self._enter_error(ErrorReason.EOF, index=index)
        return True
