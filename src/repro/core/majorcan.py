"""The MajorCAN_m protocol (Section 5 of the paper).

MajorCAN restructures the end of every frame so that the accept/reject
decision tolerates up to ``m`` randomly distributed single-bit errors
per frame:

* the EOF field becomes ``2m`` recessive bits split into two ``m``-bit
  sub-fields;
* the error (and overload) delimiter becomes ``2m + 1`` recessive bits,
  matching the frame tail (ACK delimiter + EOF) so nodes can always
  resynchronise;
* a node detecting an error in the **second sub-field** (EOF bits
  ``m+1 .. 2m``) *accepts* the frame and notifies everyone with an
  **extended error flag** that keeps the bus dominant through
  EOF-relative bit ``3m + 5``;
* a node detecting an error in the **first sub-field** (EOF bits
  ``1 .. m``) sends a normal 6-bit error flag and then **samples** the
  ``2m - 1`` bits from ``m + 7`` to ``3m + 5``, majority-voting on
  them: a dominant majority means some node is notifying acceptance,
  so it accepts too; otherwise it rejects (and the transmitter
  retransmits);
* a node whose error flag starts at the first EOF bit or earlier (CRC
  errors, form errors at the ACK delimiter, ACK errors) must *never*
  accept: it signals, rejects, performs no sampling — and, because the
  first sub-field is ``m`` bits long, no other node can first detect
  its flag inside the second sub-field even with ``m - 1`` masking
  errors;
* a *second* error detected during the EOF window and the extended
  flags is never signalled with an additional flag (it would spoil the
  agreement process) — in this implementation the property holds
  structurally, because nodes inside the EOF schedule only sample;
* errors detected after the last EOF bit keep the standard behaviour
  (overload condition).

The paper's proposal is ``m = 5``, matching the error-detection
strength of the CAN CRC-15; the class is parametric in ``m >= 3``.
The per-frame overhead versus standard CAN is ``2m - 7`` bits when the
EOF is error-free and up to ``4m - 9`` bits in the worst case
(3 and 11 bits respectively for ``m = 5``); see
:mod:`repro.analysis.overhead`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.can.bits import DOMINANT, RECESSIVE, Level
from repro.can.controller import (
    CanController,
    STATE_ERROR_WAIT,
    STATE_INTERMISSION,
)
from repro.can.controller_config import ControllerConfig
from repro.can.encoding import signal_table
from repro.can.events import ErrorReason, EventKind
from repro.can.fields import (
    ACK_DELIM,
    ACK_SLOT,
    CRC_DELIM,
    EXTENDED_FLAG,
    FLAG_LENGTH,
    SAMPLING,
)
from repro.can.frame import Frame
from repro.errors import ConfigurationError

#: MAC states added by MajorCAN.
STATE_MAJOR_FLAG = "major_flag"
STATE_MAJOR_QUIET = "major_quiet"
STATE_MAJOR_EXTENDED_FLAG = "major_extended_flag"

#: The paper's proposed tolerance (matching the CRC-15 strength).
DEFAULT_M = 5


def majorcan_config(m: int = DEFAULT_M, **overrides: object) -> ControllerConfig:
    """Build the :class:`ControllerConfig` for MajorCAN_m.

    EOF length ``2m``; delimiter length ``2m + 1`` (the frame tail,
    ACK delimiter + EOF, is ``2m + 1`` recessive bits and the error
    delimiter must match it to permit node synchronisation).
    """
    if m < 3:
        raise ConfigurationError(
            "MajorCAN requires m >= 3 (with m <= 2 the scenario leading to "
            "property CAN2' can still happen), got m=%d" % m
        )
    return ControllerConfig(
        eof_length=2 * m,
        delimiter_length=2 * m + 1,
        **overrides,  # type: ignore[arg-type]
    )


class MajorCanController(CanController):
    """A CAN controller implementing the MajorCAN_m agreement rules.

    The agreement machinery plugs into the base class exclusively
    through the ``_rx_eof_bit`` / ``_tx_eof_bit`` extension points, the
    ``_enter_error`` override, and the extra MAC states registered in
    ``__init__`` — all of which the table-driven fast path
    (``ControllerConfig.fast_path``) reaches exactly as the reference
    state machine does.  ``_handle_eof_error`` reads only the
    ``header_complete`` / ``frame()`` surface of the receive parser,
    which :class:`repro.can.parser.FastFrameParser` provides with
    identical timing; error signalling and the sampling window always
    run on the reference handlers.
    """

    protocol_name = "MajorCAN"

    def __init__(
        self,
        name: str,
        m: int = DEFAULT_M,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        if config is None:
            config = majorcan_config(m)
        else:
            expected = (2 * m, 2 * m + 1)
            if (config.eof_length, config.delimiter_length) != expected:
                raise ConfigurationError(
                    "MajorCAN_%d needs eof_length=%d and delimiter_length=%d"
                    % (m, expected[0], expected[1])
                )
        super().__init__(name, config)
        self.m = m
        #: EOF-relative (1-based) index of the bit most recently
        #: processed, valid while the EOF agreement schedule is active.
        self._eof_clock = 0
        self._eof_schedule = False
        self._sampling = False
        self._samples: List[Level] = []
        self._major_was_transmitter = False
        self._major_frame: Optional[Frame] = None
        self._drive_handlers[STATE_MAJOR_FLAG] = self._drive_major_flag
        self._drive_handlers[STATE_MAJOR_QUIET] = self._drive_major_quiet
        self._drive_handlers[STATE_MAJOR_EXTENDED_FLAG] = self._drive_extended_flag
        self._bit_handlers[STATE_MAJOR_FLAG] = self._bit_major_flag
        self._bit_handlers[STATE_MAJOR_QUIET] = self._bit_major_quiet
        self._bit_handlers[STATE_MAJOR_EXTENDED_FLAG] = self._bit_extended_flag
        if self.config.fast_path:
            # Extend the signal table with the sampling window and the
            # extended-flag span, then route the MajorCAN drive states
            # through indexed walks (bit-phase handlers stay reference).
            self._signal_table = signal_table(
                self.config.delimiter_length, extended_flag_end=self.window_end
            )
            self._drive_handlers[STATE_MAJOR_FLAG] = self._drive_major_flag_fast
            self._drive_handlers[STATE_MAJOR_QUIET] = self._drive_major_quiet_fast
            self._drive_handlers[STATE_MAJOR_EXTENDED_FLAG] = (
                self._drive_extended_flag_fast
            )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def window_start(self) -> int:
        """First sampled EOF-relative bit: ``m + 7``."""
        return self.m + 7

    @property
    def window_end(self) -> int:
        """Last sampled EOF-relative bit (and the last bit of any
        extended error flag): ``3m + 5``."""
        return 3 * self.m + 5

    @property
    def majority(self) -> int:
        """Dominant samples needed to accept: majority of ``2m - 1``."""
        return self.m

    def signal_shape(self):
        """Signalling runs plus the agreement window this node occupies."""
        from repro.can.encoding import signal_program

        return signal_program(
            self.config.delimiter_length, extended_flag_end=self.window_end
        )

    # ------------------------------------------------------------------
    # EOF policies
    # ------------------------------------------------------------------

    def _rx_eof_bit(self, index: int, seen: Level) -> None:
        if seen is DOMINANT:
            self._handle_eof_error(index)
            return
        if index == self.config.eof_length - 1:
            self._deliver_received_frame()
            self._state = STATE_INTERMISSION
            self._intermission_pos = 0
            self.is_transmitter = False

    def _tx_eof_bit(self, index: int, seen: Level) -> bool:
        if seen is DOMINANT:
            self._handle_eof_error(index)
            return True
        return False

    def _handle_eof_error(self, index: int) -> None:
        """Dominant level observed at EOF bit ``index`` (0-based)."""
        k = index + 1
        self._eof_schedule = True
        self._eof_clock = k
        self._major_was_transmitter = self.is_transmitter
        self._major_frame = None
        if not self.is_transmitter and self._parser is not None:
            if self._parser.header_complete:
                self._major_frame = self._parser.frame()
        self._log(
            EventKind.ERROR_DETECTED,
            reason=ErrorReason.EOF,
            position="EOF[%d]" % index,
            subfield=1 if k <= self.m else 2,
        )
        if k <= self.m:
            # First sub-field: signal with a normal flag, then sample.
            self._sampling = True
            self._samples = []
            self._flag_remaining = FLAG_LENGTH
            self._state = STATE_MAJOR_FLAG
            self._log(EventKind.ERROR_FLAG_START, passive=False)
        else:
            # Second sub-field: accept now, notify with an extended flag.
            self._sampling = False
            self._apply_verdict(accept=True)
            self._state = STATE_MAJOR_EXTENDED_FLAG
            self._log(EventKind.EXTENDED_FLAG_START, until=self.window_end)

    def _enter_error(self, reason: str, deferred: bool = False, **extra: object) -> None:
        """Route never-accept errors at the frame end into the EOF schedule.

        Any error detected in the frame tail — a CRC error (flag at EOF
        bit 1), a form or bit error at the CRC/ACK delimiters, an ACK
        error — must reject the frame, but the node still has to stay
        on the common EOF timeline: other nodes may be sampling until
        bit ``3m + 5``, and both starting the delimiter early and
        signalling a *second* error during the window would spoil the
        agreement process (the flag would be mistaken for an extended
        acceptance flag).  Errors detected before the frame tail use
        the plain error-frame schedule, which every node then shares.
        """
        tail_clocks = {CRC_DELIM: -2, ACK_SLOT: -1, ACK_DELIM: 0}
        position_field = self.position[0]
        at_frame_tail = (
            reason in (ErrorReason.CRC, ErrorReason.ACK)
            or position_field in tail_clocks
        )
        super()._enter_error(reason, deferred=deferred, **extra)
        if at_frame_tail and self._state == "error_flag":
            self._eof_schedule = True
            self._eof_clock = tail_clocks.get(position_field, 0)
            self._sampling = False
            self._state = STATE_MAJOR_FLAG

    # ------------------------------------------------------------------
    # MajorCAN states
    # ------------------------------------------------------------------

    def _drive_major_flag(self) -> Level:
        self.position = ("ERROR_FLAG", FLAG_LENGTH - self._flag_remaining)
        return DOMINANT

    def _bit_major_flag(self, seen: Level) -> None:
        self._eof_clock += 1
        self._flag_remaining -= 1
        if self._flag_remaining <= 0:
            self._state = STATE_MAJOR_QUIET

    def _drive_major_quiet(self) -> Level:
        self.position = (SAMPLING, self._eof_clock + 1)
        return RECESSIVE

    def _bit_major_quiet(self, seen: Level) -> None:
        self._eof_clock += 1
        if self._sampling and self.window_start <= self._eof_clock <= self.window_end:
            self._samples.append(seen)
        if self._eof_clock >= self.window_end:
            if self._sampling:
                dominant_votes = sum(
                    1 for sample in self._samples if sample is DOMINANT
                )
                accept = dominant_votes >= self.majority
                self._log(
                    EventKind.SAMPLING_VERDICT,
                    dominant=dominant_votes,
                    samples=len(self._samples),
                    accept=accept,
                )
                self._apply_verdict(accept=accept)
                self._sampling = False
            self._enter_major_epilogue()

    def _drive_extended_flag(self) -> Level:
        self.position = (EXTENDED_FLAG, self._eof_clock + 1)
        return DOMINANT

    def _drive_major_flag_fast(self) -> Level:
        self.position = self._signal_table.error_flag[
            FLAG_LENGTH - self._flag_remaining
        ]
        return DOMINANT

    def _drive_major_quiet_fast(self) -> Level:
        self.position = self._signal_table.sampling[self._eof_clock + 1]
        return RECESSIVE

    def _drive_extended_flag_fast(self) -> Level:
        self.position = self._signal_table.extended_flag[self._eof_clock + 1]
        return DOMINANT

    def _bit_extended_flag(self, seen: Level) -> None:
        self._eof_clock += 1
        if self._eof_clock >= self.window_end:
            self._enter_major_epilogue()

    def _enter_major_epilogue(self) -> None:
        """Join the common delimiter after the agreement window ends."""
        self._eof_schedule = False
        self._wait_first_bit = False
        self._wait_dominant_run = 0
        self._state = STATE_ERROR_WAIT

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def _apply_verdict(self, accept: bool) -> None:
        if accept:
            self._log(EventKind.DEFERRED_ACCEPT)
            if self._major_was_transmitter:
                self._tx_success_during_error_frame()
            elif self._major_frame is not None:
                self._rx_delivered = True
                self._frame_open = False
                self.counters.on_receive_success()
                self._record_delivery(self._major_frame)
        else:
            self._log(EventKind.DEFERRED_REJECT)
            if self._major_was_transmitter:
                self.counters.on_transmitter_error()
                self._schedule_retransmission()
            else:
                self.counters.on_receiver_error(primary=False)
                self._reject_received_frame(ErrorReason.EOF)
            self._confinement_check()

    def _after_flag_complete(self) -> None:
        """Flags sent under the EOF schedule fall through to quiet."""
        if self._eof_schedule and self._state in (
            "error_flag",
            "passive_error_flag",
        ):
            self._state = STATE_MAJOR_QUIET
            return
        super()._after_flag_complete()
