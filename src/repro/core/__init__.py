"""The paper's protocol modifications: MinorCAN and MajorCAN_m."""

from repro.core.majorcan import (
    DEFAULT_M,
    MajorCanController,
    STATE_MAJOR_EXTENDED_FLAG,
    STATE_MAJOR_FLAG,
    STATE_MAJOR_QUIET,
    majorcan_config,
)
from repro.core.minorcan import MinorCanController

__all__ = [
    "DEFAULT_M",
    "MajorCanController",
    "MinorCanController",
    "STATE_MAJOR_EXTENDED_FLAG",
    "STATE_MAJOR_FLAG",
    "STATE_MAJOR_QUIET",
    "majorcan_config",
]
