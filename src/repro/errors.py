"""Exception hierarchy for the MajorCAN reproduction.

All library-raised exceptions derive from :class:`ReproError`, so users
can catch everything the library raises with a single ``except`` clause
while still being able to distinguish specific failure modes.
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class FrameError(ReproError):
    """A CAN frame definition is invalid (identifier, payload, DLC...)."""


class EncodingError(ReproError):
    """A frame could not be serialised to a bitstream."""


class DecodingError(ReproError):
    """A received bitstream could not be parsed as a CAN frame."""


class StuffingError(DecodingError):
    """A bit-stuffing rule violation was found while destuffing offline.

    Note that the on-line receiver (:class:`repro.can.parser.FrameParser`)
    reports stuff violations as parser events rather than exceptions,
    because they are a normal, recoverable part of CAN error signalling.
    """


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class ProtocolError(ReproError):
    """A higher-level protocol (EDCAN/RELCAN/TOTCAN) violated its API."""


class AnalysisError(ReproError):
    """An analytical computation received out-of-domain parameters."""


class TraceError(SimulationError):
    """A simulation trace invariant (e.g. event time order) was violated."""


class TraceStoreError(ReproError):
    """A persisted trace is malformed, unreadable, or not replayable."""
