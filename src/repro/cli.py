"""Command-line entry point: ``majorcan-repro <command>``.

Each sub-command regenerates one of the paper's artefacts:

* ``table1``      — Table 1 (analytical IMO rates per hour);
* ``scenarios``   — Fig. 1/2/3/5 deterministic scenario outcomes;
* ``fig4``        — the MajorCAN_m per-bit behaviour table;
* ``matrix``      — the Atomic Broadcast property matrices;
* ``overhead``    — the 2m-7 / 4m-9 overhead arithmetic, measured;
* ``enumerate``   — exact tail-pattern enumeration vs. equation 4;
* ``montecarlo``  — stochastic validation of the model;
* ``verify``      — bounded exhaustive consistency verification;
* ``geometry``    — the Section 5 frame-end geometry, derived/checked;
* ``ablation``    — the m-choice ablation and the CAN6' revision;
* ``campaign``    — seeded multi-round attack campaigns;
* ``reliability`` — Table 1 restated as mission survival.

The trace store (:mod:`repro.tracestore`) adds four more:

* ``record``      — run a figure scenario and persist it as JSONL;
* ``replay``      — re-run a recording and diff against it;
* ``diff``        — structured diff of two recordings;
* ``corpus``      — check/update the golden-scenario corpus.

The traffic engine (:mod:`repro.traffic`) adds one more:

* ``traffic``     — steady-state multi-frame run with per-frame ledger
  verdicts, optionally recorded as a schema-v2 trace.

The sweep service (:mod:`repro.sweep`) adds one more:

* ``sweep``       — resumable design-space sweeps against a
  content-addressed result store (``plan``/``run``/``status``/
  ``export``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.table1 import generate_table1, render_table1

    print(render_table1(generate_table1()))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.faults.scenarios import SCENARIOS, fig3, fig5

    protocols = [args.protocol] if args.protocol else ["can", "minorcan", "majorcan"]
    for name in ("fig1a", "fig1b", "fig1c"):
        for protocol in protocols:
            print(SCENARIOS[name](protocol, m=args.m).summary())
    for protocol in protocols:
        print(fig3(protocol, m=args.m).summary())
    if args.protocol in (None, "majorcan"):
        print(fig5(m=args.m).summary())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.faults.scenarios import fig4_behaviour

    print("Behaviour of a MajorCAN_%d node:" % args.m)
    for row in fig4_behaviour(args.m):
        print("  " + row.render())
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.properties.matrix import core_matrix, hlp_matrix, render_matrix

    print("Link-layer protocols:")
    print(render_matrix(core_matrix(m=args.m)))
    print()
    print("Higher-level protocols (Rufino et al.):")
    print(render_matrix(hlp_matrix()))
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.analysis.overhead import (
        best_case_overhead_bits,
        measured_overhead,
        worst_case_overhead_bits,
    )

    m = args.m
    print("MajorCAN_%d overhead vs standard CAN" % m)
    print("  formula : best %d bits, worst %d bits"
          % (best_case_overhead_bits(m), worst_case_overhead_bits(m)))
    if 3 <= m <= 5:
        measured = measured_overhead(m)
        print("  measured: best %d bits, worst %d bits"
              % (measured.best_case, measured.worst_case))
    else:
        print("  measured: (worst-case measurement defined for m in [3, 5])")
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    from repro.analysis.enumeration import (
        enumerate_tail_patterns,
        equation4_tail_prediction,
    )

    result = enumerate_tail_patterns(
        protocol=args.protocol or "can",
        n_nodes=args.nodes,
        window=args.window,
        ber_star=args.ber_star,
        backend=args.backend,
    )
    print("protocol=%s nodes=%d window=%d patterns=%d"
          % (result.protocol, result.n_nodes, result.window, len(result.outcomes)))
    print("  P(IMO) enumerated : %.6e" % result.p_inconsistent_omission)
    print("  P(IMO) equation 4 : %.6e"
          % equation4_tail_prediction(args.ber_star, args.nodes, result.tau_data))
    print("  P(double)         : %.6e" % result.p_double_reception)
    print("  IMO patterns      : %d" % len(result.imo_patterns()))
    _print_backend_stats(result.backend_stats)
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    from repro.analysis.montecarlo import monte_carlo_tail

    result = monte_carlo_tail(
        protocol=args.protocol or "can",
        n_nodes=args.nodes,
        ber_star=args.ber_star,
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        backend=args.backend,
    )
    low, high = result.imo_confidence_interval()
    print("trials=%d flips=%d" % (result.trials, result.flips_total))
    print("  P(IMO)  : %.4f  (95%% CI [%.4f, %.4f])" % (result.p_imo, low, high))
    print("  P(incons): %.4f" % result.p_inconsistent)
    _print_backend_stats(result.backend_stats)
    return 0


def _cmd_geometry(args: argparse.Namespace) -> int:
    from repro.analysis.geometry import geometry_report

    print(geometry_report(args.m))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.faults.campaigns import compare_protocols
    from repro.metrics.report import render_table

    outcomes = compare_protocols(
        jobs=args.jobs,
        backend=args.backend,
        rounds=args.rounds,
        attack_probability=args.attack,
        noise_ber_star=args.noise,
        seed=args.seed,
    )
    print(
        render_table(
            [outcome.as_row() for outcome in outcomes],
            columns=[
                "protocol",
                "rounds",
                "attacked",
                "consistent",
                "imo",
                "double",
                "errors",
            ],
            title="Consistency campaign (Fig. 3a attacks + optional noise)",
        )
    )
    _print_backend_stats(
        _merge_stats(outcome.backend_stats for outcome in outcomes)
    )
    return 0


def _cmd_reliability(args: argparse.Namespace) -> int:
    from repro.analysis.reliability import reliability_sweep

    ber_values = args.bers if args.bers else [args.ber]
    backend = None if args.backend == "analytic" else args.backend
    sweep = reliability_sweep(
        ber_values, mission_hours=(1.0, 8760.0), jobs=args.jobs, backend=backend
    )
    for ber, rows in sweep.items():
        source = "paper profile" if backend is None else (
            "paper profile, enumerated tail on the %s backend" % backend
        )
        print("Channel-error IMO reliability at ber=%.0e (%s):" % (ber, source))
        for row in rows:
            print(
                "  %-9s rate=%.3e /h  MTTF=%s h  P(survive 1 year)=%.6f"
                % (
                    row.protocol,
                    row.imo_rate_per_hour,
                    "inf" if row.mttf_hours == float("inf") else "%.3e" % row.mttf_hours,
                    row.mission_survival[8760.0],
                )
            )
    _print_backend_stats(
        _merge_stats(
            row.backend_stats for rows in sweep.values() for row in rows
        )
    )
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import m_ablation, omission_degree_revision
    from repro.metrics.report import render_table

    rows = m_ablation(
        m_values=tuple(args.m_values),
        tail_flips=args.flips,
        jobs=args.jobs,
        backend=args.backend,
    )
    print(
        render_table(
            [
                {
                    "m": row.m,
                    "best bits": row.best_case_bits,
                    "worst bits": row.worst_case_bits,
                    "tail ok": row.tail_consistent,
                    "F1 closed": row.f1_channel_closed,
                }
                for row in rows
            ],
            columns=["m", "best bits", "worst bits", "tail ok", "F1 closed"],
            title="Choice of m — overhead vs verified robustness",
        )
    )
    _print_backend_stats(_merge_stats(row.backend_stats for row in rows))
    print()
    for ber in (1e-4, 1e-5, 1e-6):
        revision = omission_degree_revision(ber)
        print(
            "CAN6' at ber=%.0e: j=%.2e  j'=%.2e  (x%.0f)"
            % (ber, revision.j_old_scenarios, revision.j_prime_with_new, revision.inflation)
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.verification import header_sites, verify_consistency

    extra = ()
    if args.include_header:
        names = ["tx"] + ["r%d" % i for i in range(1, args.nodes)]
        extra = header_sites(names)
    result = verify_consistency(
        protocol=args.protocol or "majorcan",
        m=args.m,
        n_nodes=args.nodes,
        max_flips=args.flips,
        extra_sites=extra,
        jobs=args.jobs,
        backend=args.backend,
    )
    print(result.summary())
    for counterexample in result.counterexamples[:20]:
        print("  " + str(counterexample))
    if len(result.counterexamples) > 20:
        print("  ... and %d more" % (len(result.counterexamples) - 20))
    _print_backend_stats(result.backend_stats)
    return 0 if result.holds else 1


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.faults.scenarios import SCENARIOS, fig3
    from repro.tracestore import record_outcome

    name = args.scenario
    if name == "fig3":
        outcome = fig3(args.protocol or "can", m=args.m)
    elif name in ("fig3a", "fig3b", "fig5"):
        outcome = SCENARIOS[name](m=args.m)
    else:
        outcome = SCENARIOS[name](args.protocol or "can", m=args.m)
    out = args.out or ("%s-%s.jsonl" % (outcome.name, outcome.protocol.lower()))
    path = record_outcome(out, outcome)
    print("recorded %s -> %s" % (outcome.summary(), path))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.tracestore import replay_trace

    result = replay_trace(args.recording)
    if result.bit_identical:
        print("replay of %s: bit-identical" % result.recorded.name)
        return 0
    print("replay of %s DIVERGED:" % result.recorded.name)
    print(result.diff.summary())
    return 1


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.tracestore import diff_traces, load_trace

    diff = diff_traces(load_trace(args.expected), load_trace(args.actual))
    print(diff.summary())
    return 0 if diff.identical else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.tracestore import check_corpus, update_corpus

    if args.action == "update":
        for path in update_corpus(args.dir):
            print("wrote %s" % path)
        return 0
    report = check_corpus(args.dir, jobs=args.jobs)
    print(report.summary())
    return 0 if report.ok else 1


def _parse_burst(text: str):
    """Parse a ``node:window:start:length`` burst flag."""
    from repro.errors import ConfigurationError
    from repro.traffic import BurstSpec

    parts = text.split(":")
    if len(parts) != 4:
        raise ConfigurationError(
            "burst must be node:window:start:length, got %r" % text
        )
    try:
        window, start, length = (int(part) for part in parts[1:])
    except ValueError:
        raise ConfigurationError(
            "burst window/start/length must be integers, got %r" % text
        )
    return BurstSpec(node=parts[0], window=window, start=start, length=length)


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.traffic import TrafficSpec, record_traffic, run_traffic

    spec = TrafficSpec(
        name=args.name,
        protocol=args.protocol,
        m=args.m,
        n_nodes=args.nodes,
        windows=args.windows,
        window_bits=args.window_bits,
        source=args.source,
        load=args.load,
        frame_bits=args.frame_bits,
        rate_per_bit=args.rate,
        messages_per_node=args.messages,
        seed=args.seed,
        hlp=args.hlp,
        noise_ber=args.noise,
        noise_nodes=tuple(args.noise_nodes) if args.noise_nodes else None,
        bursts=tuple(_parse_burst(item) for item in (args.burst or ())),
        bus_off_recovery=args.bus_off_recovery,
        record_events=not args.no_events,
    )
    outcome = run_traffic(spec, jobs=args.jobs, backend=args.backend)
    print(outcome.summary())
    _print_backend_stats(outcome.backend_stats)
    if args.record:
        record_traffic(args.record, outcome, meta={"entry": spec.name})
        print("recorded %s" % args.record)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import (
        ResultStore,
        SweepSpec,
        pending_cells,
        run_sweep,
        surface_rows,
    )

    spec = SweepSpec.from_file(args.spec)
    store = ResultStore(args.store)
    if args.action == "plan":
        pending, skipped = pending_cells(spec, store, backend=args.backend)
        print(
            "sweep %r: %d cells (%d pending, %d already stored)"
            % (spec.name, spec.cell_count(), len(pending), skipped)
        )
        for _, _, key in pending[:10]:
            print("  pending %s" % key[:16])
        if len(pending) > 10:
            print("  ... and %d more" % (len(pending) - 10))
        return 0
    if args.action == "run":
        report = run_sweep(
            spec,
            store,
            jobs=args.jobs,
            backend=args.backend,
            cell_budget=args.cell_budget,
        )
        print(report.summary())
        print("  store digest %s" % report.digest[:16])
        _print_backend_stats(report.backend_stats)
        return 0 if report.complete else 3
    if args.action == "status":
        status = store.status()
        pending, _ = pending_cells(spec, store, backend=args.backend)
        print("store %s: %s" % (store.root, status.summary()))
        print("  %d of %d cells pending" % (len(pending), spec.cell_count()))
        return 0
    # export
    from repro.metrics.export import write_rows

    rows = surface_rows(store)
    if not args.out:
        for row in rows:
            if row.get("surface") == "traffic":
                print(
                    "%s m=%d nodes=%d load=%.2f %s: %d/%d delivered "
                    "bus=%.3f backlog=%d arb_lost=%d atomic=%s"
                    % (
                        row["protocol"],
                        row["m"],
                        row["n_nodes"],
                        row["load"],
                        row["source"],
                        row["delivered"],
                        row["frames_submitted"],
                        row["bus_load"],
                        row["max_backlog"],
                        row["arbitration_lost"],
                        row["atomic"],
                    )
                )
                continue
            print(
                "%s m=%d ber=%.0e nodes=%d p_imo=%.3e imo/h=%.3e"
                % (
                    row["protocol"],
                    row["m"],
                    row["ber"],
                    row["n_nodes"],
                    row["p_imo"],
                    row["imo_per_hour"],
                )
            )
        return 0
    write_rows(args.out, rows)
    print("wrote %d surface rows -> %s" % (len(rows), args.out))
    return 0


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or 1; -1 = all CPUs); "
        "results are identical for any value",
    )


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=["engine", "batch"],
        default="engine",
        help="placement classifier: 'engine' simulates every placement, "
        "'batch' uses the vectorised tail/header replay (identical "
        "results; prints its batch/scalar/header/engine split)",
    )


def _merge_stats(stats_iter) -> dict:
    """Sum any number of optional per-run stat dicts into one."""
    merged: dict = {}
    for stats in stats_iter:
        for key, value in (stats or {}).items():
            merged[key] = merged.get(key, 0) + value
    return merged


def _print_backend_stats(stats) -> None:
    """Print the batch backend's provenance split (and any notice).

    Printed after the main output and only when a batch result carries
    stats, so engine-backend output is byte-identical to earlier
    releases and silent engine bail-outs become visible.
    """
    if not stats:
        return
    from repro.analysis.batchreplay import engine_share_notice, format_stats

    print("  " + format_stats(stats))
    notice = engine_share_notice(stats)
    if notice is not None:
        print("  " + notice)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="majorcan-repro",
        description="MajorCAN (ICDCS 2000) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="reproduce Table 1")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("scenarios", help="run the figure scenarios")
    p.add_argument("--protocol", choices=["can", "minorcan", "majorcan"])
    p.add_argument("--m", type=int, default=5)
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("fig4", help="MajorCAN per-bit behaviour table")
    p.add_argument("--m", type=int, default=5)
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("matrix", help="Atomic Broadcast property matrices")
    p.add_argument("--m", type=int, default=5)
    p.set_defaults(func=_cmd_matrix)

    p = sub.add_parser("overhead", help="MajorCAN overhead arithmetic")
    p.add_argument("--m", type=int, default=5)
    p.set_defaults(func=_cmd_overhead)

    p = sub.add_parser("enumerate", help="exact tail-pattern enumeration")
    p.add_argument("--protocol", choices=["can", "minorcan", "majorcan"])
    p.add_argument("--nodes", type=int, default=3)
    p.add_argument("--window", type=int, default=2)
    p.add_argument("--ber-star", type=float, default=1e-4, dest="ber_star")
    _add_backend(p)
    p.set_defaults(func=_cmd_enumerate)

    p = sub.add_parser("geometry", help="MajorCAN frame-end geometry report")
    p.add_argument("--m", type=int, default=5)
    p.set_defaults(func=_cmd_geometry)

    p = sub.add_parser("campaign", help="multi-round consistency campaign")
    p.add_argument("--rounds", type=int, default=30)
    p.add_argument("--attack", type=float, default=0.3)
    p.add_argument("--noise", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=7)
    _add_jobs(p)
    _add_backend(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("reliability", help="mission reliability comparison")
    p.add_argument("--ber", type=float, default=1e-4)
    p.add_argument(
        "--bers",
        type=float,
        nargs="+",
        default=None,
        help="sweep several bit-error rates (overrides --ber)",
    )
    _add_jobs(p)
    p.add_argument(
        "--backend",
        choices=["analytic", "engine", "batch"],
        default="analytic",
        help="rate source: 'analytic' evaluates the closed-form "
        "equations; 'engine' and 'batch' measure the tail-window IMO "
        "probability on the simulator (per-pattern engine runs vs. the "
        "vectorised replay — identical rates; 'batch' prints its "
        "batch/scalar/header/engine split)",
    )
    p.set_defaults(func=_cmd_reliability)

    p = sub.add_parser("ablation", help="m-choice ablation and CAN6' revision")
    p.add_argument(
        "--m-values",
        type=int,
        nargs="+",
        default=[3, 4, 5, 6, 7],
        dest="m_values",
    )
    p.add_argument("--flips", type=int, default=1)
    _add_jobs(p)
    _add_backend(p)
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser(
        "verify", help="bounded exhaustive consistency verification"
    )
    p.add_argument("--protocol", choices=["can", "minorcan", "majorcan"])
    p.add_argument("--m", type=int, default=5)
    p.add_argument("--nodes", type=int, default=3)
    p.add_argument("--flips", type=int, default=2)
    p.add_argument(
        "--include-header",
        action="store_true",
        help="add DLC/DATA sites (exposes finding F1)",
    )
    _add_jobs(p)
    _add_backend(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("record", help="record a figure scenario as JSONL")
    p.add_argument(
        "scenario",
        choices=["fig1a", "fig1b", "fig1c", "fig3", "fig3a", "fig3b", "fig5"],
    )
    p.add_argument("--protocol", choices=["can", "minorcan", "majorcan"])
    p.add_argument("--m", type=int, default=5)
    p.add_argument("--out", help="output path (default: <scenario>-<protocol>.jsonl)")
    p.set_defaults(func=_cmd_record)

    p = sub.add_parser("replay", help="re-run a recording and diff against it")
    p.add_argument("recording", help="path to a .jsonl recording")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("diff", help="structured diff of two recordings")
    p.add_argument("expected", help="reference recording")
    p.add_argument("actual", help="candidate recording")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("corpus", help="golden-scenario corpus maintenance")
    p.add_argument("action", choices=["check", "update"])
    p.add_argument("--dir", default="corpus", help="corpus directory")
    _add_jobs(p)
    p.set_defaults(func=_cmd_corpus)

    p = sub.add_parser(
        "traffic", help="steady-state multi-frame traffic run"
    )
    p.add_argument("--name", default="traffic", help="run/recording name")
    p.add_argument(
        "--protocol",
        choices=["can", "minorcan", "majorcan"],
        default="can",
        help="link-layer protocol of every node",
    )
    p.add_argument("--m", type=int, default=5, help="MajorCAN_m parameter")
    p.add_argument("--nodes", type=int, default=4, help="node count")
    p.add_argument(
        "--windows", type=int, default=1,
        help="time-window partition (the sharding unit; part of the "
        "experiment identity)",
    )
    p.add_argument(
        "--window-bits", type=int, default=2000, dest="window_bits",
        help="active bits per window (each window drains to idle after)",
    )
    p.add_argument(
        "--source", choices=["periodic", "poisson"], default="periodic",
        help="workload generator family",
    )
    p.add_argument(
        "--load", type=float, default=0.5,
        help="target bus load of the periodic workload (values > 1 "
        "model overload)",
    )
    p.add_argument(
        "--frame-bits", type=int, default=110, dest="frame_bits",
        help="nominal frame length used by the load arithmetic",
    )
    p.add_argument(
        "--rate", type=float, default=0.0,
        help="per-bit submission probability of the poisson workload",
    )
    p.add_argument(
        "--messages", type=int, default=None,
        help="cap on messages per node over the whole run",
    )
    p.add_argument("--seed", type=int, default=0, help="root seed")
    p.add_argument(
        "--hlp", choices=["edcan", "relcan", "totcan"], default=None,
        help="run a higher-level protocol above the controllers",
    )
    p.add_argument(
        "--noise", type=float, default=0.0,
        help="per-node per-bit view-error probability (sustained noise)",
    )
    p.add_argument(
        "--noise-nodes", nargs="*", default=None, dest="noise_nodes",
        help="restrict noise to these node names",
    )
    p.add_argument(
        "--burst", action="append", default=None,
        help="view-error burst as node:window:start:length (repeatable; "
        "window -1 = every window)",
    )
    p.add_argument(
        "--bus-off-recovery", action="store_true", dest="bus_off_recovery",
        help="let bus-off nodes rejoin after 128 x 11 recessive bits",
    )
    p.add_argument(
        "--record", default=None, metavar="PATH",
        help="write the run as a schema-v2 recording",
    )
    p.add_argument(
        "--no-events", action="store_true", dest="no_events",
        help="skip event lines in recordings (smaller files)",
    )
    _add_jobs(p)
    p.add_argument(
        "--backend",
        choices=["engine", "batch"],
        default="engine",
        help="window evaluator: 'engine' steps every bit, 'batch' "
        "replays fault-free windows frame-granularly (identical "
        "ledger/stats/recording; prints its batch/engine window split)",
    )
    p.set_defaults(func=_cmd_traffic)

    p = sub.add_parser(
        "sweep", help="resumable design-space sweep over a result store"
    )
    p.add_argument(
        "action",
        choices=["plan", "run", "status", "export"],
        help="plan: list pending cells; run: evaluate them (resumable); "
        "status: store summary; export: probability-surface rows",
    )
    p.add_argument("spec", help="path to a SweepSpec JSON file")
    p.add_argument(
        "--store",
        default="sweep-store",
        help="result-store directory (created if missing)",
    )
    p.add_argument(
        "--cell-budget",
        type=int,
        default=None,
        dest="cell_budget",
        help="evaluate at most this many cells this run (the rest stay "
        "pending; exit code 3 signals an incomplete grid)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="export target (.csv or .json; default: print a summary "
        "per cell)",
    )
    _add_jobs(p)
    p.add_argument(
        "--backend",
        choices=["engine", "batch"],
        default="batch",
        help="placement classifier (part of each cell's identity; "
        "'batch' is the production default, 'engine' the per-pattern "
        "reference)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("montecarlo", help="stochastic model validation")
    p.add_argument("--protocol", choices=["can", "minorcan", "majorcan"])
    p.add_argument("--nodes", type=int, default=3)
    p.add_argument("--trials", type=int, default=500)
    p.add_argument("--ber-star", type=float, default=0.05, dest="ber_star")
    p.add_argument("--seed", type=int, default=None)
    _add_jobs(p)
    _add_backend(p)
    p.set_defaults(func=_cmd_montecarlo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
