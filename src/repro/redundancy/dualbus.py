"""A replicated (dual) CAN bus architecture.

Reference [2] of the paper (Ferriol, Proenza et al., ICC'98) proposes
media redundancy — every node attached to two independent CAN buses,
each message sent on both — as an architectural route to fault
tolerance.  This module implements that architecture over this
repository's controllers so the two philosophies can be compared on
equal terms:

* **protocol fix** (MajorCAN): one bus, modified controllers;
* **redundancy fix** (dual CAN): two buses, unmodified controllers,
  delivery on the first copy.

A dual bus masks any inconsistency confined to *one* channel (the
replica on the other channel still arrives), but disturbances striking
the same frame on both channels — or a receiver desynchronised on both
— defeat it; the benchmarks quantify exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.can.controller import CanController
from repro.can.events import Delivery
from repro.can.frame import Frame
from repro.errors import ConfigurationError, SimulationError
from repro.simulation.engine import FaultInjector, SimulationEngine

#: Names of the two channels.
CHANNELS = ("A", "B")


class DualBusNode:
    """One node with a controller on each of the two buses.

    The node broadcasts every message on both channels and delivers an
    incoming message when its *first* replica arrives; the second
    replica is recognised by wire identity and suppressed.
    """

    def __init__(
        self,
        name: str,
        controller_factory: Callable[[str], CanController],
    ) -> None:
        self.name = name
        self.controllers: Dict[str, CanController] = {
            channel: controller_factory("%s.%s" % (name, channel))
            for channel in CHANNELS
        }
        #: Application-level deliveries (first replica of each message).
        self.app_deliveries: List[Delivery] = []
        self.app_broadcasts: List[Frame] = []
        self._delivered_keys: List[tuple] = []
        self._cursors: Dict[str, int] = {channel: 0 for channel in CHANNELS}

    def submit(self, frame: Frame) -> None:
        """Broadcast ``frame`` on both channels."""
        self.app_broadcasts.append(frame)
        for controller in self.controllers.values():
            controller.submit(frame)

    @property
    def correct(self) -> bool:
        """The node is correct while at least one channel port works.

        (A fail-silent *node* crash is modelled by crashing both
        ports; a single-port failure is a channel fault.)
        """
        return any(not c.offline for c in self.controllers.values())

    def crash(self) -> None:
        """Fail-silent crash of the whole node (both ports)."""
        for controller in self.controllers.values():
            controller.crash()

    def poll(self) -> None:
        """Merge new controller deliveries into the app-level ledger."""
        for channel in CHANNELS:
            controller = self.controllers[channel]
            while self._cursors[channel] < len(controller.deliveries):
                delivery = controller.deliveries[self._cursors[channel]]
                self._cursors[channel] += 1
                key = delivery.wire_key()
                if key in self._delivered_keys:
                    continue
                self._delivered_keys.append(key)
                self.app_deliveries.append(
                    Delivery(
                        frame=delivery.frame,
                        time=delivery.time,
                        node=self.name,
                        attempt=delivery.attempt,
                    )
                )

    def delivery_count(self, frame: Frame) -> int:
        """App-level delivery count of ``frame``'s wire identity."""
        key = (
            frame.can_id.value,
            frame.can_id.extended,
            frame.remote,
            frame.dlc,
            frame.data,
        )
        return sum(1 for d in self.app_deliveries if d.wire_key() == key)


class DualBusSystem:
    """Two independent buses advanced in lockstep.

    Each channel has its own :class:`SimulationEngine` and may have its
    own fault injector; the system steps both engines one bit at a time
    and polls the nodes' merge layer after every bit.
    """

    def __init__(
        self,
        node_names: Sequence[str],
        controller_factory: Callable[[str], CanController] = CanController,
        injectors: Optional[Dict[str, FaultInjector]] = None,
    ) -> None:
        if len(node_names) < 2:
            raise ConfigurationError("a dual-bus system needs at least 2 nodes")
        injectors = injectors or {}
        self.nodes: List[DualBusNode] = [
            DualBusNode(name, controller_factory) for name in node_names
        ]
        self.engines: Dict[str, SimulationEngine] = {}
        for channel in CHANNELS:
            self.engines[channel] = SimulationEngine(
                [node.controllers[channel] for node in self.nodes],
                injector=injectors.get(channel),
                record_bits=False,
            )

    def node(self, name: str) -> DualBusNode:
        """Look up a node by name."""
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise SimulationError("no node named %r" % name)

    def step(self) -> None:
        """Advance both channels by one bit time."""
        for channel in CHANNELS:
            self.engines[channel].step()
        for node in self.nodes:
            node.poll()

    def run(self, bits: int) -> None:
        for _ in range(bits):
            self.step()

    def run_until_idle(self, max_bits: int = 60000, settle_bits: int = 12) -> None:
        """Run until both channels are quiet."""
        quiet = 0
        for _ in range(max_bits):
            self.step()
            if all(
                engine.bus.idle_tail() >= 1 and engine._all_idle()
                for engine in self.engines.values()
            ):
                quiet += 1
                if quiet >= settle_bits:
                    return
            else:
                quiet = 0
        raise SimulationError("dual bus did not become idle in %d bits" % max_bits)

    # ------------------------------------------------------------------
    # Classification (mirrors ScenarioOutcome)
    # ------------------------------------------------------------------

    def classify(self, frame: Frame) -> "DualBusOutcome":
        """Consistency verdict for ``frame`` across the live nodes."""
        counts = {
            node.name: node.delivery_count(frame)
            for node in self.nodes
            if node.correct
        }
        return DualBusOutcome(counts=counts)


@dataclass(frozen=True)
class DualBusOutcome:
    """Per-node app-level delivery counts for one message."""

    counts: Dict[str, int]

    @property
    def consistent(self) -> bool:
        return len(set(self.counts.values())) <= 1

    @property
    def inconsistent_omission(self) -> bool:
        values = list(self.counts.values())
        return any(v == 0 for v in values) and any(v > 0 for v in values)

    @property
    def all_delivered_once(self) -> bool:
        return all(v == 1 for v in self.counts.values())
