"""Media redundancy: the dual-CAN architecture of the paper's ref. [2]."""

from repro.redundancy.dualbus import (
    CHANNELS,
    DualBusNode,
    DualBusOutcome,
    DualBusSystem,
)

__all__ = [
    "CHANNELS",
    "DualBusNode",
    "DualBusOutcome",
    "DualBusSystem",
]
