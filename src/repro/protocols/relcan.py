"""RELCAN: confirmation-based reliable broadcast (Rufino et al.).

The transmitter follows every successful data transmission with a
CONFIRM message.  Receivers deliver the data immediately; only if the
CONFIRM fails to arrive within a timeout do they retransmit the data
themselves (recovering from a transmitter crash at a much lower cost
than EDCAN's always-on diffusion).

RELCAN's recovery is armed by the *transmitter failing*; in the
paper's new scenarios (Fig. 3a) the transmitter remains correct,
happily confirms a frame that part of the receivers never accepted,
and the omission becomes permanent — RELCAN does not provide
Agreement there, which is exactly the point of Section 4.
"""

from __future__ import annotations

from typing import Dict

from repro.protocols.base import (
    AppMessage,
    BroadcastProtocol,
    KIND_CONFIRM,
    KIND_DATA,
    KIND_RETRANS,
    MessageKey,
)

#: Default CONFIRM timeout, in bit times.  Generous enough for a
#: confirm frame to win arbitration on a loaded bus.
DEFAULT_TIMEOUT_BITS = 400


class RelcanProtocol(BroadcastProtocol):
    """Deliver on first copy; retransmit if the CONFIRM never comes."""

    name = "RELCAN"

    def __init__(self, timeout_bits: int = DEFAULT_TIMEOUT_BITS) -> None:
        super().__init__()
        self.timeout_bits = timeout_bits
        self._deadlines: Dict[MessageKey, int] = {}
        self._settled: Dict[MessageKey, bool] = {}

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def on_frame_delivered(self, message: AppMessage, time: int) -> None:
        if message.kind in (KIND_DATA, KIND_RETRANS):
            if not self.node.has_delivered(message.key):
                self.node.deliver(message, time)
            if message.kind == KIND_RETRANS:
                # Someone else already recovered this message.
                self._settle(message.key)
            elif not self._settled.get(message.key):
                self._deadlines.setdefault(message.key, time + self.timeout_bits)
        elif message.kind == KIND_CONFIRM:
            self._settle(message.key)

    def on_tick(self, time: int) -> None:
        expired = [
            key for key, deadline in self._deadlines.items() if time >= deadline
        ]
        for key in expired:
            del self._deadlines[key]
            if self._settled.get(key):
                continue
            self._settle(key)
            origin, seq = key
            self.node.send(AppMessage(kind=KIND_RETRANS, origin=origin, seq=seq))

    # ------------------------------------------------------------------
    # Transmitter side
    # ------------------------------------------------------------------

    def on_frame_transmitted(self, message: AppMessage, time: int) -> None:
        if message.kind == KIND_DATA:
            if not self.node.has_delivered(message.key):
                self.node.deliver(message, time)
            self._settle(message.key)
            self.node.send(
                AppMessage(kind=KIND_CONFIRM, origin=message.origin, seq=message.seq)
            )

    def _settle(self, key: MessageKey) -> None:
        self._settled[key] = True
        self._deadlines.pop(key, None)
