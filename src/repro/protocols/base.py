"""Application-layer substrate for the higher-level protocols.

Rufino et al.'s protocols (EDCAN, RELCAN, TOTCAN) run in the *process*
above an unmodified CAN controller.  :class:`AppNode` provides that
process: it owns a controller, polls its deliveries and transmission
successes once per bit time (registered as an engine tick hook),
encodes application messages into frame payloads, runs protocol
timeouts, and keeps the application-level delivery ledger that the
Atomic Broadcast checkers inspect.

Wire encoding of an application message ``(origin, seq)``:

* payload byte 0: message kind (DATA / CONFIRM / ACCEPT / RETRANS);
* payload byte 1: origin node id;
* payload byte 2: sequence number (mod 256);
* payload bytes 3+: user payload.

CAN identifiers place control traffic (CONFIRM/ACCEPT) above data
traffic in the arbitration order and keep ids unique per sender, so
concurrent recovery retransmissions arbitrate cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.can.controller import CanController
from repro.can.events import Delivery
from repro.can.frame import Frame, data_frame
from repro.errors import ProtocolError
from repro.properties.ledger import SystemLedger
from repro.simulation.engine import SimulationEngine

KIND_DATA = 0
KIND_CONFIRM = 1
KIND_ACCEPT = 2
KIND_RETRANS = 3

KIND_NAMES = {
    KIND_DATA: "DATA",
    KIND_CONFIRM: "CONFIRM",
    KIND_ACCEPT: "ACCEPT",
    KIND_RETRANS: "RETRANS",
}

#: CAN-id bases per kind; control frames outrank data frames.
_ID_BASE = {
    KIND_CONFIRM: 0x080,
    KIND_ACCEPT: 0x080,
    KIND_RETRANS: 0x180,
    KIND_DATA: 0x100,
}

MessageKey = Tuple[int, int]


@dataclass(frozen=True)
class AppMessage:
    """A decoded application-level message."""

    kind: int
    origin: int
    seq: int
    payload: bytes = b""

    @property
    def key(self) -> MessageKey:
        return (self.origin, self.seq)

    def __str__(self) -> str:
        return "%s(origin=%d, seq=%d)" % (
            KIND_NAMES.get(self.kind, "?"),
            self.origin,
            self.seq,
        )


def encode_message(message: AppMessage, sender_id: int) -> Frame:
    """Serialise an application message into a CAN data frame."""
    if not 0 <= message.origin <= 255 or not 0 <= sender_id <= 63:
        raise ProtocolError("node ids must fit the wire encoding")
    payload = bytes([message.kind, message.origin, message.seq & 0xFF]) + message.payload
    if len(payload) > 8:
        raise ProtocolError("user payload too long for one CAN frame")
    identifier = _ID_BASE[message.kind] + sender_id
    return data_frame(identifier, payload)


def decode_message(frame: Frame) -> Optional[AppMessage]:
    """Parse an application message from a frame; None if not one."""
    if frame.remote or len(frame.data) < 3:
        return None
    kind = frame.data[0]
    if kind not in KIND_NAMES:
        return None
    return AppMessage(
        kind=kind,
        origin=frame.data[1],
        seq=frame.data[2],
        payload=frame.data[3:],
    )


def message_ledger_key(frame: Frame):
    """Ledger key for application messages: their (origin, seq) pair."""
    message = decode_message(frame)
    if message is None:
        return ("raw", frame.can_id.value, frame.data)
    return ("msg", message.origin, message.seq)


class BroadcastProtocol:
    """Base class for the higher-level broadcast protocols.

    Subclasses implement the hooks; :class:`AppNode` drives them.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.node: Optional["AppNode"] = None

    def attach(self, node: "AppNode") -> None:
        self.node = node

    def on_broadcast(self, message: AppMessage) -> None:
        """The local application asked to broadcast ``message``."""
        self.node.send(message)

    def on_frame_delivered(self, message: AppMessage, time: int) -> None:
        """The controller delivered a protocol frame."""

    def on_frame_transmitted(self, message: AppMessage, time: int) -> None:
        """A frame this node sent completed successfully."""

    def on_tick(self, time: int) -> None:
        """Called once per bit time (for timeouts)."""


class AppNode:
    """A process + controller pair running one broadcast protocol."""

    def __init__(
        self,
        node_id: int,
        controller: CanController,
        protocol: BroadcastProtocol,
    ) -> None:
        self.node_id = node_id
        self.controller = controller
        self.protocol = protocol
        self.name = controller.name
        #: Application-level deliveries (what the AB checkers inspect).
        self.app_deliveries: List[Delivery] = []
        #: Application-level broadcast log.
        self.app_broadcasts: List[Frame] = []
        self._delivered_keys: List[MessageKey] = []
        self._seq = 0
        self._rx_cursor = 0
        self._tx_cursor = 0
        protocol.attach(self)

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------

    def broadcast(self, payload: bytes = b"") -> AppMessage:
        """Broadcast a new message through the protocol."""
        message = AppMessage(
            kind=KIND_DATA, origin=self.node_id, seq=self._seq, payload=payload
        )
        self._seq += 1
        self.app_broadcasts.append(encode_message(message, self.node_id))
        self.protocol.on_broadcast(message)
        return message

    def advance_sequence_to(self, seq: int) -> None:
        """Fast-forward the next broadcast sequence number to ``seq``.

        Sharded traffic runs (``repro.traffic``) rebuild the network
        for every time window; the window's first broadcast from this
        node must continue the global per-origin numbering, so the
        driver fast-forwards the counter before submitting.  Rewinding
        is refused — it would mint duplicate (origin, seq) keys.
        """
        if seq < self._seq:
            raise ProtocolError(
                "sequence numbers only advance (at %d, asked for %d)"
                % (self._seq, seq)
            )
        self._seq = seq

    @property
    def delivered_keys(self) -> List[MessageKey]:
        """(origin, seq) keys delivered so far, in delivery order."""
        return list(self._delivered_keys)

    @property
    def correct(self) -> bool:
        """Whether the underlying node is still correct (online)."""
        return not self.controller.offline

    # ------------------------------------------------------------------
    # Protocol-facing services
    # ------------------------------------------------------------------

    def send(self, message: AppMessage) -> None:
        """Queue a protocol frame on the controller."""
        self.controller.submit(encode_message(message, self.node_id))

    def deliver(self, message: AppMessage, time: int) -> None:
        """Deliver a message to the local application (ledger entry)."""
        frame = encode_message(
            AppMessage(KIND_DATA, message.origin, message.seq, message.payload),
            self.node_id,
        )
        self.app_deliveries.append(Delivery(frame=frame, time=time, node=self.name))
        self._delivered_keys.append(message.key)

    def has_delivered(self, key: MessageKey) -> bool:
        """Whether the application already delivered ``key``."""
        return key in self._delivered_keys

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------

    def tick(self, time: int) -> None:
        """Poll controller progress and run protocol timeouts."""
        if self.controller.offline:
            return
        deliveries = self.controller.deliveries
        while self._rx_cursor < len(deliveries):
            delivery = deliveries[self._rx_cursor]
            self._rx_cursor += 1
            message = decode_message(delivery.frame)
            if message is not None and not self._is_own_echo(delivery):
                self.protocol.on_frame_delivered(message, delivery.time)
        successes = self.controller.tx_successes
        while self._tx_cursor < len(successes):
            success_time, frame = successes[self._tx_cursor]
            self._tx_cursor += 1
            message = decode_message(frame)
            if message is not None:
                self.protocol.on_frame_transmitted(message, success_time)
        self.protocol.on_tick(time)

    def _is_own_echo(self, delivery: Delivery) -> bool:
        """Self-deliveries of the controller are reported through
        ``on_frame_transmitted``, not ``on_frame_delivered``."""
        return delivery.attempt is not None


def build_protocol_network(
    protocol_factory,
    n_nodes: int,
    controller_factory=CanController,
    engine_kwargs: Optional[dict] = None,
) -> Tuple[SimulationEngine, List[AppNode]]:
    """Wire up ``n_nodes`` AppNodes on one bus.

    ``protocol_factory()`` must return a fresh protocol instance;
    ``controller_factory(name)`` a fresh controller.
    """
    nodes: List[AppNode] = []
    controllers: List[CanController] = []
    for node_id in range(n_nodes):
        controller = controller_factory("n%d" % node_id)
        controllers.append(controller)
        nodes.append(AppNode(node_id, controller, protocol_factory()))
    engine = SimulationEngine(controllers, **(engine_kwargs or {}))
    for node in nodes:
        engine.add_tick_hook(node.tick)
    return engine, nodes


def app_ledger(nodes: Sequence[AppNode]) -> SystemLedger:
    """Build the application-level system ledger of a protocol run."""
    deliveries: Dict[str, List[Delivery]] = {}
    broadcasts: Dict[str, List[Frame]] = {}
    correct: Dict[str, bool] = {}
    for node in nodes:
        deliveries[node.name] = node.app_deliveries
        broadcasts[node.name] = node.app_broadcasts
        correct[node.name] = node.correct
    return SystemLedger.from_deliveries(
        deliveries, broadcasts, correct, key=message_ledger_key
    )
