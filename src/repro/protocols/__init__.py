"""The FTCS'98 higher-level broadcast protocols (the paper's baselines)."""

from repro.protocols.base import (
    AppMessage,
    AppNode,
    BroadcastProtocol,
    KIND_ACCEPT,
    KIND_CONFIRM,
    KIND_DATA,
    KIND_RETRANS,
    app_ledger,
    build_protocol_network,
    decode_message,
    encode_message,
    message_ledger_key,
)
from repro.protocols.edcan import EdcanProtocol
from repro.protocols.relcan import RelcanProtocol
from repro.protocols.stats import (
    BandwidthReport,
    bandwidth_comparison,
    measure_hlp_bandwidth,
    measure_majorcan_bandwidth,
)
from repro.protocols.totcan import TotcanProtocol

#: Name -> protocol factory registry.
PROTOCOL_FACTORIES = {
    "edcan": EdcanProtocol,
    "relcan": RelcanProtocol,
    "totcan": TotcanProtocol,
}

__all__ = [
    "AppMessage",
    "BandwidthReport",
    "AppNode",
    "BroadcastProtocol",
    "EdcanProtocol",
    "KIND_ACCEPT",
    "KIND_CONFIRM",
    "KIND_DATA",
    "KIND_RETRANS",
    "PROTOCOL_FACTORIES",
    "RelcanProtocol",
    "TotcanProtocol",
    "app_ledger",
    "bandwidth_comparison",
    "build_protocol_network",
    "decode_message",
    "encode_message",
    "measure_hlp_bandwidth",
    "measure_majorcan_bandwidth",
    "message_ledger_key",
]
