"""EDCAN: error-detection-based diffusion (Rufino et al., FTCS'98).

Every receiver retransmits each message once upon first reception, so
a message survives any single transmitter failure: as long as *one*
node received it, everybody eventually does.  The price is at least
one extra frame per message and per receiver (the lowest-performing of
the three FTCS'98 protocols), and the protocol still provides no total
order: a node that misses the original transmission delivers the
message out of order when a diffusion copy finally arrives.

Of the three higher-level protocols, EDCAN is the only one that keeps
Agreement in the paper's *new* scenarios (Section 4): its recovery
does not depend on the transmitter detecting anything.
"""

from __future__ import annotations

from typing import List

from repro.protocols.base import (
    AppMessage,
    BroadcastProtocol,
    KIND_DATA,
    KIND_RETRANS,
    MessageKey,
)


class EdcanProtocol(BroadcastProtocol):
    """Deliver on first copy; retransmit every newly seen message once."""

    name = "EDCAN"

    def __init__(self) -> None:
        super().__init__()
        self._retransmitted: List[MessageKey] = []

    def on_broadcast(self, message: AppMessage) -> None:
        # The originator transmitted the message itself; it must not
        # diffuse it again when the receivers' copies come back.
        self._retransmitted.append(message.key)
        super().on_broadcast(message)

    def on_frame_delivered(self, message: AppMessage, time: int) -> None:
        if message.kind not in (KIND_DATA, KIND_RETRANS):
            return
        if not self.node.has_delivered(message.key):
            self.node.deliver(message, time)
        if message.key not in self._retransmitted:
            self._retransmitted.append(message.key)
            self.node.send(
                AppMessage(
                    kind=KIND_RETRANS,
                    origin=message.origin,
                    seq=message.seq,
                    payload=message.payload,
                )
            )

    def on_frame_transmitted(self, message: AppMessage, time: int) -> None:
        if message.kind == KIND_DATA and not self.node.has_delivered(message.key):
            self.node.deliver(message, time)
