"""TOTCAN: totally ordered broadcast via ACCEPT frames (Rufino et al.).

Receivers place each incoming message at the tail of a tentative
queue (a duplicate moves the message back to the tail).  The
transmitter follows a successful data transmission with an ACCEPT
frame; receiving the ACCEPT *fixes* the message's position, and
messages are delivered from the head of the queue once fixed.  If the
ACCEPT does not arrive within a timeout, the message is removed — the
transmitter must have failed before accepting, and since no one can
have delivered it, discarding preserves agreement.

TOTCAN provides full Atomic Broadcast under the FTCS'98 failure
assumptions.  In the paper's *new* scenarios it breaks exactly like
RELCAN: the correct transmitter ACCEPTs a message that part of the
receivers never received, so those nodes silently omit it (AB2
violated) — recovery is only armed by transmitter failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.protocols.base import (
    AppMessage,
    BroadcastProtocol,
    KIND_ACCEPT,
    KIND_DATA,
    MessageKey,
)

#: Default ACCEPT timeout, in bit times.
DEFAULT_TIMEOUT_BITS = 400


@dataclass
class _QueueEntry:
    message: AppMessage
    deadline: int
    accepted: bool = False


class TotcanProtocol(BroadcastProtocol):
    """Tentative queue + ACCEPT confirmation = total order."""

    name = "TOTCAN"

    def __init__(self, timeout_bits: int = DEFAULT_TIMEOUT_BITS) -> None:
        super().__init__()
        self.timeout_bits = timeout_bits
        self._queue: List[_QueueEntry] = []
        #: ACCEPTs seen before their data frame (arrival reordering guard).
        self._accepted_early: Dict[MessageKey, int] = {}

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def on_frame_delivered(self, message: AppMessage, time: int) -> None:
        if message.kind == KIND_DATA:
            entry = self._find(message.key)
            if entry is not None:
                # Duplicate: move to the tail of the queue.
                self._queue.remove(entry)
                entry.deadline = time + self.timeout_bits
                self._queue.append(entry)
            else:
                entry = _QueueEntry(message, deadline=time + self.timeout_bits)
                self._queue.append(entry)
            if message.key in self._accepted_early:
                entry.accepted = True
                del self._accepted_early[message.key]
            self._flush(time)
        elif message.kind == KIND_ACCEPT:
            entry = self._find(message.key)
            if entry is None:
                # ACCEPT for a message this node never received: in the
                # paper's new scenarios this is precisely where the
                # omission becomes unrecoverable.  Remember it briefly
                # in case the data frame is still in flight.
                self._accepted_early[message.key] = time
                return
            entry.accepted = True
            self._flush(time)

    def on_tick(self, time: int) -> None:
        changed = False
        for entry in list(self._queue):
            if not entry.accepted and time >= entry.deadline:
                self._queue.remove(entry)
                changed = True
        if changed:
            self._flush(time)

    # ------------------------------------------------------------------
    # Transmitter side
    # ------------------------------------------------------------------

    def on_frame_transmitted(self, message: AppMessage, time: int) -> None:
        if message.kind == KIND_DATA:
            self.node.send(
                AppMessage(kind=KIND_ACCEPT, origin=message.origin, seq=message.seq)
            )
        elif message.kind == KIND_ACCEPT:
            # The transmitter fixes its own message when the ACCEPT is
            # out: every correct receiver now has (or will fix) it.
            if not self.node.has_delivered(message.key):
                self.node.deliver(message, time)

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------

    def _find(self, key: MessageKey) -> Optional[_QueueEntry]:
        for entry in self._queue:
            if entry.message.key == key:
                return entry
        return None

    def _flush(self, time: int) -> None:
        """Deliver fixed messages from the head of the queue."""
        while self._queue and self._queue[0].accepted:
            entry = self._queue.pop(0)
            if not self.node.has_delivered(entry.message.key):
                self.node.deliver(entry.message, time)
