"""Measured bandwidth accounting for the broadcast protocols.

Section 5's overhead comparison contrasts MajorCAN's handful of bits
with "the transmission of more than a CAN frame per message" for the
FTCS'98 protocols.  This module measures that cost directly from
simulation: run one application broadcast through each protocol and
count the frames and bus bits actually spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.can.fields import nominal_frame_length
from repro.core.majorcan import DEFAULT_M, MajorCanController
from repro.errors import ProtocolError
from repro.protocols.base import build_protocol_network, decode_message
from repro.protocols.edcan import EdcanProtocol
from repro.protocols.relcan import RelcanProtocol
from repro.protocols.totcan import TotcanProtocol
from repro.simulation.engine import SimulationEngine

#: Local registry (the package-level one would be a circular import).
_FACTORIES = {
    "edcan": EdcanProtocol,
    "relcan": RelcanProtocol,
    "totcan": TotcanProtocol,
}


@dataclass(frozen=True)
class BandwidthReport:
    """Measured bus cost of delivering one application message."""

    protocol: str
    n_nodes: int
    frames_on_bus: int
    frame_bits_total: int
    bus_busy_bits: int

    @property
    def extra_frames(self) -> int:
        """Frames beyond the single data frame an ideal broadcast needs."""
        return self.frames_on_bus - 1


def measure_hlp_bandwidth(
    protocol: str,
    n_nodes: int = 4,
    payload: bytes = b"\xaa",
    run_bits: int = 4000,
) -> BandwidthReport:
    """Measure one broadcast's bus cost under a higher-level protocol."""
    key = protocol.lower()
    if key not in _FACTORIES:
        raise ProtocolError(
            "unknown protocol %r (choose from %s)"
            % (protocol, sorted(_FACTORIES))
        )
    engine, nodes = build_protocol_network(
        _FACTORIES[key], n_nodes, engine_kwargs={"record_bits": False}
    )
    nodes[0].broadcast(payload)
    engine.run(run_bits)
    engine.run_until_idle(60000)
    frames = 0
    frame_bits = 0
    for node in nodes:
        for _, frame in node.controller.tx_successes:
            if decode_message(frame) is None:
                continue
            frames += 1
            frame_bits += nominal_frame_length(frame)
    return BandwidthReport(
        protocol=_FACTORIES[key].name,
        n_nodes=n_nodes,
        frames_on_bus=frames,
        frame_bits_total=frame_bits,
        bus_busy_bits=_busy_bits(engine),
    )


def measure_majorcan_bandwidth(
    n_nodes: int = 4,
    payload: bytes = b"\xaa",
    m: int = DEFAULT_M,
) -> BandwidthReport:
    """Measure one broadcast's bus cost under MajorCAN_m.

    One frame, no control traffic: the entire overhead is the longer
    frame tail.
    """
    from repro.can.frame import data_frame

    controllers = [MajorCanController("n%d" % i, m=m) for i in range(n_nodes)]
    engine = SimulationEngine(controllers, record_bits=False)
    frame = data_frame(0x100, payload)
    controllers[0].submit(frame)
    engine.run_until_idle(20000)
    return BandwidthReport(
        protocol="MajorCAN_%d" % m,
        n_nodes=n_nodes,
        frames_on_bus=len(controllers[0].tx_successes),
        frame_bits_total=nominal_frame_length(frame, eof_length=2 * m),
        bus_busy_bits=_busy_bits(engine),
    )


def bandwidth_comparison(n_nodes: int = 4, payload: bytes = b"\xaa") -> Dict[str, BandwidthReport]:
    """One broadcast through every protocol, measured on the bus."""
    reports = {
        name: measure_hlp_bandwidth(name, n_nodes=n_nodes, payload=payload)
        for name in _FACTORIES
    }
    majorcan = measure_majorcan_bandwidth(n_nodes=n_nodes, payload=payload)
    reports["majorcan"] = majorcan
    return reports


def _busy_bits(engine: SimulationEngine) -> int:
    """Bus bits from the first dominant bit to the last."""
    history = engine.bus.history
    first: Optional[int] = None
    last = 0
    for index, level in enumerate(history):
        if level.value == 0:
            if first is None:
                first = index
            last = index
    if first is None:
        return 0
    return last - first + 1
